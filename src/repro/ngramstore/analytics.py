"""Cross-store analytics: streaming diff and intersect of two stores.

The tacl-style text-reuse workloads — "which n-grams are unique to corpus
A?" (*diff*) and "which n-grams do corpora A and B share, and how often?"
(*intersect*) — are both one ordered co-scan over two stores: each store
streams its records in global key order, so a single merge-join visits
every key of either store exactly once, with O(1) memory and zero index
lookups.  The scans run over :meth:`~repro.ngramstore.reader.NGramStore.
exact_items`, i.e. main table *plus* residual sidecar, so a τ>1 store
contributes its full count table: "absent from B" means *really* absent,
not merely below B's serving threshold.  Stores that declare τ>1 but carry
no residual (legacy builds) cannot make that claim — their sub-τ counts
were dropped at count time — so they are refused unless the caller opts
into ``allow_thresholded=True``, mirroring the merge's lower-bound guard.

Both analytics come in two shapes:

* **record streams** — :func:`diff_records` / :func:`intersect_records`
  yield :class:`~repro.ngramstore.api.NGramRecord` lazily, for pipelines
  and the CLI's stdout mode;
* **store directories** — :func:`diff_stores` / :func:`intersect_stores`
  write the result as a regular store (same manifest/partition/table
  format, reusing the merge's :class:`~repro.ngramstore.merge.
  _PartitionSink` plumbing), so a diff or intersection is itself
  queryable, serveable, and mergeable like any other store.

Record values: a diff record carries A's count; an intersect record
carries ``[count_a, count_b]`` (a list, so the value survives JSON wire
round trips unchanged).  Keys are term-id tuples, and ids are only
comparable across stores encoded against the same dictionary — inputs
that persisted vocabularies must agree line-for-line, exactly as in
:func:`~repro.ngramstore.merge.merge_stores`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.config import StoreConfig
from repro.exceptions import StoreError
from repro.ngramstore.api import NGramRecord
from repro.ngramstore.build import (
    clear_store_dir,
    plan_boundaries,
    write_dictionary,
    write_store_manifest,
)
from repro.ngramstore.merge import (
    _boundary_sample,
    _merged_vocabulary_lines,
    _PartitionSink,
    _residual_exact,
)
from repro.ngramstore.reader import NGramStore

Record = Tuple[Any, Any]
StoreInput = Union[str, NGramStore]

_MISSING = object()

#: Analytics kinds recorded in an output store's manifest metadata.
ANALYTICS_KINDS = ("diff", "intersect")


def _validated_min_frequency(min_frequency: int) -> int:
    if isinstance(min_frequency, bool) or not isinstance(min_frequency, int):
        raise StoreError(
            f"min_frequency must be an integer, got {min_frequency!r}"
        )
    if min_frequency < 1:
        raise StoreError(f"min_frequency must be >= 1, got {min_frequency}")
    return min_frequency


def _count_at_least(key: Any, value: Any, threshold: int) -> bool:
    """``value >= threshold`` for real counts; non-counts refuse loudly."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise StoreError(
            f"min_frequency filtering needs integer counts: key {key!r} has "
            f"{type(value).__name__} value {value!r}"
        )
    return value >= threshold


def _open_pair(
    a: StoreInput, b: StoreInput
) -> Tuple[NGramStore, NGramStore, List[NGramStore]]:
    """Open both inputs; returns (a, b, stores-we-opened-and-must-close)."""
    owned: List[NGramStore] = []
    stores: List[NGramStore] = []
    try:
        for source in (a, b):
            if isinstance(source, NGramStore):
                stores.append(source)
            else:
                opened = NGramStore.open(str(source))
                owned.append(opened)
                stores.append(opened)
    except Exception:
        for opened in owned:
            opened.close()
        raise
    return stores[0], stores[1], owned


def _check_comparable(
    store_a: NGramStore, store_b: NGramStore, allow_thresholded: bool
) -> Optional[List[str]]:
    """Refuse comparisons that cannot be exact; returns the shared vocabulary.

    A τ>1 store without a residual sidecar streams a *filtered* view, so
    "absent from B" (diff) or "shared count" (intersect) claims would be
    wrong below τ.  ``allow_thresholded`` keeps the comparison over the
    serving views for callers who want exactly that.  Vocabulary agreement
    is checked the same way the merge checks it: persisted dictionaries
    must match line-for-line, else the id-keyed co-scan would compare
    unrelated n-grams.
    """
    for open_store in (store_a, store_b):
        if not _residual_exact(open_store) and not allow_thresholded:
            raise StoreError(
                f"cannot compare exactly: {open_store.store_dir!r} declares "
                f"min_frequency={open_store.min_frequency} but carries no "
                "residual table (or is stamped counts=lower_bound), so keys "
                "below its threshold are missing from its stream; rebuild "
                "with a residual sidecar, or pass allow_thresholded=True "
                "(--allow-thresholded) to compare the serving views as-is"
            )
    return _merged_vocabulary_lines(
        [store_a.store_dir, store_b.store_dir], [store_a, store_b]
    )


def _co_scan(
    a_records: Iterator[Record], b_records: Iterator[Record]
) -> Iterator[Tuple[Any, Any, Any]]:
    """Ordered merge-join: yields ``(key, value_a, value_b)`` for the union.

    Either value is the module-level ``_MISSING`` sentinel when the key is
    absent from that side.  Both inputs must be sorted by key (which
    ``exact_items()`` guarantees); each record is visited exactly once.
    """
    a_iter, b_iter = iter(a_records), iter(b_records)
    a = next(a_iter, _MISSING)
    b = next(b_iter, _MISSING)
    while a is not _MISSING or b is not _MISSING:
        if b is _MISSING or (a is not _MISSING and a[0] < b[0]):
            yield a[0], a[1], _MISSING
            a = next(a_iter, _MISSING)
        elif a is _MISSING or b[0] < a[0]:
            yield b[0], _MISSING, b[1]
            b = next(b_iter, _MISSING)
        else:
            yield a[0], a[1], b[1]
            a = next(a_iter, _MISSING)
            b = next(b_iter, _MISSING)


def diff_records(
    a: StoreInput,
    b: StoreInput,
    min_frequency: int = 1,
    allow_thresholded: bool = False,
) -> Iterator[NGramRecord]:
    """Stream the n-grams of ``a`` absent from ``b``, in key order.

    Each yielded record carries A's exact count.  ``min_frequency`` keeps
    only diff records whose A-count reaches the bound (τ-filtering the
    *analysis*, not the inputs).  Inputs are store directories or opened
    stores; directories are opened for the duration of the stream.
    """
    min_frequency = _validated_min_frequency(min_frequency)
    store_a, store_b, owned = _open_pair(a, b)
    try:
        _check_comparable(store_a, store_b, allow_thresholded)
        for key, value_a, value_b in _co_scan(
            store_a.exact_items(), store_b.exact_items()
        ):
            if value_a is _MISSING or value_b is not _MISSING:
                continue
            if min_frequency > 1 and not _count_at_least(key, value_a, min_frequency):
                continue
            yield NGramRecord(key, value_a)
    finally:
        for opened in owned:
            opened.close()


def intersect_records(
    a: StoreInput,
    b: StoreInput,
    min_frequency: int = 1,
    allow_thresholded: bool = False,
) -> Iterator[NGramRecord]:
    """Stream the n-grams shared by ``a`` and ``b`` with per-store counts.

    Each yielded record's value is ``[count_a, count_b]``.
    ``min_frequency`` keeps only keys reaching the bound in *both* stores.
    """
    min_frequency = _validated_min_frequency(min_frequency)
    store_a, store_b, owned = _open_pair(a, b)
    try:
        _check_comparable(store_a, store_b, allow_thresholded)
        for key, value_a, value_b in _co_scan(
            store_a.exact_items(), store_b.exact_items()
        ):
            if value_a is _MISSING or value_b is _MISSING:
                continue
            if min_frequency > 1 and not (
                _count_at_least(key, value_a, min_frequency)
                and _count_at_least(key, value_b, min_frequency)
            ):
                continue
            yield NGramRecord(key, [value_a, value_b])
    finally:
        for opened in owned:
            opened.close()


def _write_analytics_store(
    kind: str,
    a: StoreInput,
    b: StoreInput,
    out_dir: str,
    store: Optional[StoreConfig],
    metadata: Optional[Dict[str, Any]],
    min_frequency: int,
    allow_thresholded: bool,
) -> str:
    min_frequency = _validated_min_frequency(min_frequency)
    store = store if store is not None else StoreConfig()
    store_a, store_b, owned = _open_pair(a, b)
    try:
        for open_store in (store_a, store_b):
            if os.path.abspath(open_store.store_dir) == os.path.abspath(out_dir):
                raise StoreError(
                    f"analytics output {out_dir!r} cannot be one of the inputs"
                )
        vocabulary_lines = _check_comparable(store_a, store_b, allow_thresholded)

        # The result's keys are a subset of A's keys (diff and intersect
        # alike), so A's block-index first keys — plus its residual's, which
        # exact_items() also streams — sample the output key distribution.
        sampled = [store_a]
        if store_a.residual is not None:
            sampled.append(store_a.residual)
        boundaries = plan_boundaries(
            _boundary_sample(sampled, store.sample_size, store.num_partitions),
            store.num_partitions,
        )

        if kind == "diff":
            records: Iterator[NGramRecord] = diff_records(
                store_a, store_b, min_frequency, allow_thresholded
            )
        elif kind == "intersect":
            records = intersect_records(
                store_a, store_b, min_frequency, allow_thresholded
            )
        else:
            raise StoreError(
                f"unknown analytics kind {kind!r}; expected one of "
                f"{', '.join(ANALYTICS_KINDS)}"
            )

        clear_store_dir(out_dir)
        sink = _PartitionSink(out_dir, store, boundaries)
        try:
            for key, value in records:
                sink.append(key, value)
            sink.close()
        except Exception:
            sink.abort()
            raise

        if vocabulary_lines is not None:
            write_dictionary(out_dir, vocabulary_lines)
        combined: Dict[str, Any] = {
            "analytics": kind,
            "analytics_inputs": [
                os.path.basename(os.path.normpath(store_a.store_dir)),
                os.path.basename(os.path.normpath(store_b.store_dir)),
            ],
            "analytics_min_frequency": min_frequency,
        }
        if metadata:
            combined.update(metadata)
        write_store_manifest(
            out_dir,
            codec=store.codec,
            records_per_block=store.records_per_block,
            boundaries=boundaries,
            partitions=sink.partitions,
            has_vocabulary=vocabulary_lines is not None,
            metadata=combined,
        )
    finally:
        for opened in owned:
            opened.close()
    return out_dir


def diff_stores(
    a: StoreInput,
    b: StoreInput,
    out_dir: str,
    store: Optional[StoreConfig] = None,
    metadata: Optional[Dict[str, Any]] = None,
    min_frequency: int = 1,
    allow_thresholded: bool = False,
) -> str:
    """Write the diff of ``a`` minus ``b`` as a store directory.

    The output is a regular store (record value = A's count): queryable
    with ``repro query``, serveable, and a valid merge input.  Its manifest
    metadata records the provenance (``analytics``/``analytics_inputs``/
    ``analytics_min_frequency``) and the shared vocabulary — when the
    inputs persisted one — is carried so term-keyed queries keep working.
    Returns ``out_dir``.
    """
    return _write_analytics_store(
        "diff", a, b, out_dir, store, metadata, min_frequency, allow_thresholded
    )


def intersect_stores(
    a: StoreInput,
    b: StoreInput,
    out_dir: str,
    store: Optional[StoreConfig] = None,
    metadata: Optional[Dict[str, Any]] = None,
    min_frequency: int = 1,
    allow_thresholded: bool = False,
) -> str:
    """Write the intersection of ``a`` and ``b`` as a store directory.

    Record values are ``[count_a, count_b]`` lists, so frequency-ordered
    ``top_k`` does not apply to an intersection store (key order does);
    point lookups and prefix scans work unchanged.  Returns ``out_dir``.
    """
    return _write_analytics_store(
        "intersect", a, b, out_dir, store, metadata, min_frequency, allow_thresholded
    )
