"""Long-lived query server over one shared :class:`NGramStore`.

The north star is serving n-gram statistics to many consumers, and the
``query`` CLI opens (and throws away) a store per invocation.
:class:`NGramStoreServer` keeps one store open in one process, shares a
single process-wide LRU :class:`~repro.ngramstore.table.BlockCache` across
every partition, and serves concurrent clients from a thread per
connection — the store layer's locks (added for exactly this) make the
readers safe, and the cache turns a hot key set into pure in-memory
bisects no matter which connection asked first.

The wire protocol is newline-delimited JSON — one request object per
line, one response object per line, over a plain TCP socket::

    -> {"op": "get", "ngram": [3, 7]}
    <- {"ok": true, "found": true, "value": 42}

    -> {"op": "prefix", "tokens": [3], "limit": 100}
    <- {"ok": true, "records": [[[3, 7], 42], ...], "truncated": false}

    -> {"op": "top_k", "k": 10, "order": "frequency"}
    <- {"ok": true, "records": [[[0], 981], ...]}

    -> {"op": "stats"} | {"op": "server_stats"} | {"op": "ping"}

Keys travel as JSON arrays of term identifiers (the store's native keys);
failures come back as ``{"ok": false, "error": ...}`` on the same stream,
so one bad request does not cost the connection.  :class:`StoreClient` is
the in-repo client: it speaks the protocol and hands back tuples, exactly
what :class:`NGramStore` itself returns — the serve-smoke CI step asserts
that equivalence byte for byte.
"""

from __future__ import annotations

import json
import math
import socket
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.config import ServerConfig
from repro.exceptions import StoreError
from repro.ngramstore.reader import NGramStore
from repro.ngramstore.table import TOP_K_ORDERS, BlockCache

Record = Tuple[Any, Any]

#: Largest accepted request line; anything longer is a protocol error.
MAX_REQUEST_BYTES = 1 << 20

#: Latency samples retained per operation for percentile reporting; counts
#: and totals keep accumulating after the reservoir is full.
LATENCY_SAMPLE_CAP = 100_000

#: Protocol operations (also the keys of the metrics snapshot).
OPERATIONS = ("get", "prefix", "top_k", "stats", "server_stats", "ping")

#: Server-side result caps: a single response is one JSON line held in
#: memory, so unbounded prefix scans (or absurd k) must not let one
#: request materialise a whole larger-than-RAM store.  Capped prefix
#: responses set ``truncated``; clients page with an explicit start key
#: or fall back to offline scans for bulk exports.
MAX_PREFIX_RECORDS = 10_000
MAX_TOP_K = 10_000


def percentile(sorted_samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sample list (must be non-empty)."""
    rank = max(1, min(len(sorted_samples), math.ceil(len(sorted_samples) * fraction)))
    return sorted_samples[rank - 1]


class ServerMetrics:
    """Thread-safe per-operation request counts and latency aggregates."""

    def __init__(self, sample_cap: int = LATENCY_SAMPLE_CAP) -> None:
        self._lock = threading.Lock()
        self._sample_cap = sample_cap
        self._operations: Dict[str, Dict[str, Any]] = {}
        self.connections_accepted = 0
        self.requests = 0
        self.errors = 0
        self.started_at = time.time()

    def record_connection(self) -> None:
        with self._lock:
            self.connections_accepted += 1

    def record(self, operation: str, seconds: float, ok: bool) -> None:
        with self._lock:
            entry = self._operations.setdefault(
                operation, {"count": 0, "errors": 0, "total_s": 0.0, "samples": []}
            )
            entry["count"] += 1
            entry["total_s"] += seconds
            if not ok:
                entry["errors"] += 1
                self.errors += 1
            if len(entry["samples"]) < self._sample_cap:
                entry["samples"].append(seconds)
            self.requests += 1

    def snapshot(self) -> Dict[str, Any]:
        """Aggregated counters plus latency percentiles, JSON-ready."""
        # Copy under the lock, sort outside it: sorting up to sample_cap
        # floats must not stall every request thread waiting on record().
        with self._lock:
            copied = {
                operation: (entry["count"], entry["errors"], entry["total_s"], list(entry["samples"]))
                for operation, entry in self._operations.items()
            }
            totals = {
                "uptime_s": round(time.time() - self.started_at, 3),
                "connections_accepted": self.connections_accepted,
                "requests": self.requests,
                "errors": self.errors,
            }
        operations = {}
        for operation, (count, errors, total_s, samples) in copied.items():
            samples.sort()
            summary = {
                "count": count,
                "errors": errors,
                "total_ms": round(total_s * 1e3, 3),
                "mean_us": round(total_s / count * 1e6, 1),
            }
            if samples:
                summary.update(
                    {
                        "p50_us": round(percentile(samples, 0.50) * 1e6, 1),
                        "p90_us": round(percentile(samples, 0.90) * 1e6, 1),
                        "p99_us": round(percentile(samples, 0.99) * 1e6, 1),
                        "max_us": round(samples[-1] * 1e6, 1),
                    }
                )
            operations[operation] = summary
        totals["operations"] = operations
        return totals


def _json_key(data: Any) -> Tuple:
    if not isinstance(data, list):
        raise StoreError(f"n-gram must be a JSON array of terms, got {type(data).__name__}")
    return tuple(data)


_MISSING = object()


class NGramStoreServer:
    """Serves one store to concurrent socket clients; see the module docstring.

    ``max_clients`` bounds the handler threads: when every slot is busy the
    accept loop simply stops accepting, so excess connections queue in the
    listen backlog (backpressure) instead of failing or piling up threads.
    """

    def __init__(
        self,
        store: Any,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        if isinstance(store, NGramStore):
            # Caller-managed store: its cache setup is its own business —
            # self.cache is None when it uses private per-table caches, so
            # stats reporting falls back to the store's aggregation instead
            # of an orphan cache no table feeds.
            self.store = store
            self.cache = store.cache
        else:
            self.cache = BlockCache(self.config.cache_blocks)
            self.store = NGramStore.open(str(store), cache=self.cache)
        self.metrics = ServerMetrics()
        self.host = self.config.host
        self.port = self.config.port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._slots = threading.Semaphore(self.config.max_clients)
        self._shutdown = threading.Event()
        self._connections: "set[socket.socket]" = set()
        self._connections_lock = threading.Lock()

    # ----------------------------------------------------------- lifecycle
    def start(self) -> Tuple[str, int]:
        """Bind, listen and serve in background threads; returns (host, port)."""
        if self._listener is not None:
            raise StoreError("server already started")
        self._listener = socket.create_server(
            (self.host, self.port), backlog=self.config.max_clients
        )
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ngramstore-accept", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def close(self) -> None:
        """Stop accepting, drop open connections, close the store."""
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        if self._listener is not None:
            # shutdown() before close(): on Linux, close() alone does not
            # wake a thread blocked in accept() — it would sit there until
            # the next (never-coming) connection.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self.store.close()

    def __enter__(self) -> "NGramStoreServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def cache_summary(self) -> Dict[str, Any]:
        """Block-cache counters, JSON-ready (the ``server_stats`` shape).

        ``store.cache_stats()`` covers both layouts — the shared cache's
        counters, or the per-table aggregate for caller-managed stores;
        capacity/residency only exist when one shared cache is in play.
        The shared cache object outlives a closed store, so the CLI can
        still build its shutdown report from this.
        """
        stats = self.store.cache_stats()
        summary: Dict[str, Any] = {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "hit_rate": round(stats.hit_rate, 6),
        }
        if self.cache is not None:
            summary["capacity_blocks"] = self.cache.capacity
            summary["resident_blocks"] = len(self.cache)
        return summary

    # ------------------------------------------------------------- serving
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            # A free handler slot is a precondition for accepting: the
            # kernel backlog, not a thread pile-up, absorbs bursts beyond
            # max_clients.
            self._slots.acquire()
            try:
                connection, _ = self._listener.accept()
            except OSError:
                self._slots.release()
                if self._shutdown.is_set():
                    return
                # Transient accept failures (ECONNABORTED from a client
                # resetting in the backlog, EMFILE under fd pressure) must
                # not permanently stop a live server; back off and retry.
                time.sleep(0.05)
                continue
            if self._shutdown.is_set():
                connection.close()
                self._slots.release()
                return
            self.metrics.record_connection()
            with self._connections_lock:
                self._connections.add(connection)
            handler = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="ngramstore-client",
                daemon=True,
            )
            try:
                handler.start()
            except RuntimeError:
                # Thread exhaustion: drop this connection, keep serving.
                with self._connections_lock:
                    self._connections.discard(connection)
                connection.close()
                self._slots.release()

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            reader = connection.makefile("rb")
            with reader:
                while not self._shutdown.is_set():
                    line = reader.readline(MAX_REQUEST_BYTES + 1)
                    if not line:
                        return
                    if len(line) > MAX_REQUEST_BYTES:
                        self._respond(
                            connection,
                            {"ok": False, "error": "request exceeds 1 MiB"},
                        )
                        return
                    started = time.perf_counter()
                    operation = "invalid"
                    try:
                        request = json.loads(line)
                        if not isinstance(request, dict):
                            raise StoreError("request must be a JSON object")
                        operation = str(request.get("op"))
                        response = self._handle(operation, request)
                        response["ok"] = True
                    except (StoreError, KeyError, TypeError, ValueError) as error:
                        response = {"ok": False, "error": f"{error}"}
                    ok = response.get("ok", False)
                    # Clamp to the known set: client-chosen strings must not
                    # grow the metrics dict without bound on a long-lived server.
                    bucket = operation if operation in OPERATIONS else "invalid"
                    self.metrics.record(bucket, time.perf_counter() - started, ok)
                    if not self._respond(connection, response):
                        return
        except OSError:
            pass  # client went away (or shutdown closed the socket underneath)
        finally:
            with self._connections_lock:
                self._connections.discard(connection)
            try:
                connection.close()
            except OSError:
                pass
            self._slots.release()

    def _respond(self, connection: socket.socket, response: Dict[str, Any]) -> bool:
        try:
            payload = json.dumps(response, separators=(",", ":"))
        except (TypeError, ValueError) as error:
            # Non-JSON-serialisable store values (arbitrary build_store
            # payloads) are a per-request failure, not a dead connection.
            payload = json.dumps(
                {"ok": False, "error": f"value is not JSON-serialisable: {error}"}
            )
        try:
            connection.sendall(payload.encode("utf-8") + b"\n")
            return True
        except OSError:
            return False

    # ------------------------------------------------------------ handlers
    def _handle(self, operation: str, request: Dict[str, Any]) -> Dict[str, Any]:
        if operation == "get":
            key = _json_key(request.get("ngram"))
            value = self.store.get(key, _MISSING)
            if value is _MISSING:
                return {"found": False, "value": None}
            return {"found": True, "value": value}
        if operation == "prefix":
            key = _json_key(request.get("tokens", []))
            limit = request.get("limit")
            if limit is not None and (not isinstance(limit, int) or limit < 0):
                raise StoreError(f"prefix limit must be a non-negative integer, got {limit!r}")
            effective_limit = MAX_PREFIX_RECORDS if limit is None else min(limit, MAX_PREFIX_RECORDS)
            records: List[List[Any]] = []
            truncated = False
            for record_key, value in self.store.prefix(key):
                if len(records) >= effective_limit:
                    truncated = True
                    break
                records.append([list(record_key), value])
            return {"records": records, "truncated": truncated}
        if operation == "top_k":
            k = request.get("k")
            if not isinstance(k, int) or isinstance(k, bool):
                raise StoreError(f"top_k k must be an integer, got {k!r}")
            if k > MAX_TOP_K:
                raise StoreError(f"top_k k must be <= {MAX_TOP_K}, got {k}")
            order = request.get("order", "frequency")
            if order not in TOP_K_ORDERS:
                raise StoreError(
                    f"top_k order must be one of {', '.join(TOP_K_ORDERS)}, got {order!r}"
                )
            records = [
                [list(record_key), value] for record_key, value in self.store.top_k(k, order)
            ]
            return {"records": records}
        if operation == "stats":
            manifest = self.store.manifest
            return {
                "store_dir": self.store.store_dir,
                "num_records": self.store.num_records,
                "num_partitions": self.store.num_partitions,
                "codec": self.store.codec_name,
                "has_vocabulary": bool(manifest.get("has_vocabulary")),
                "metadata": manifest.get("metadata", {}),
            }
        if operation == "server_stats":
            snapshot = self.metrics.snapshot()
            snapshot["cache"] = self.cache_summary()
            with self._connections_lock:
                snapshot["active_connections"] = len(self._connections)
            return snapshot
        if operation == "ping":
            return {"pong": True}
        raise StoreError(
            f"unknown op {operation!r}; expected one of {', '.join(OPERATIONS)}"
        )


class StoreClient:
    """Client for :class:`NGramStoreServer`'s newline-delimited JSON protocol.

    Results mirror the :class:`NGramStore` API — keys come back as tuples —
    so a client is a drop-in remote replacement for an opened store on the
    get/prefix/top_k surface.  One instance owns one connection and is not
    itself thread-safe; concurrent callers each open their own (the server
    is built for many connections).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")

    # ------------------------------------------------------------ plumbing
    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        payload = json.dumps(request, separators=(",", ":")).encode("utf-8")
        self._socket.sendall(payload + b"\n")
        line = self._reader.readline()
        if not line:
            raise StoreError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            raise StoreError(f"server error: {response.get('error', 'unknown')}")
        return response

    # ------------------------------------------------------------- queries
    def get(self, ngram: Iterable[Any], default: Any = None) -> Any:
        response = self._call({"op": "get", "ngram": list(ngram)})
        return response["value"] if response["found"] else default

    def prefix(
        self, tokens: Iterable[Any], limit: Optional[int] = None
    ) -> List[Record]:
        request: Dict[str, Any] = {"op": "prefix", "tokens": list(tokens)}
        if limit is not None:
            request["limit"] = limit
        response = self._call(request)
        records = response["records"]
        if response.get("truncated") and (limit is None or len(records) < limit):
            # Truncated short of what the caller asked for (everything, or
            # a limit above the server cap): a silently partial result
            # would be a wrong answer.
            raise StoreError(
                f"prefix result truncated at the server cap ({MAX_PREFIX_RECORDS} "
                "records); pass a limit at or below the cap, or export offline"
            )
        return [(tuple(key), value) for key, value in records]

    def top_k(self, k: int, order: str = "frequency") -> List[Record]:
        response = self._call({"op": "top_k", "k": k, "order": order})
        return [(tuple(key), value) for key, value in response["records"]]

    def stats(self) -> Dict[str, Any]:
        return self._call({"op": "stats"})

    def server_stats(self) -> Dict[str, Any]:
        return self._call({"op": "server_stats"})

    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "StoreClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
