"""Long-lived query server over one shared :class:`NGramStore`.

The north star is serving n-gram statistics to many consumers, and the
``query`` CLI opens (and throws away) a store per invocation.
:class:`NGramStoreServer` keeps one store open in one process, shares a
single process-wide LRU :class:`~repro.ngramstore.table.BlockCache` across
every partition, and serves concurrent clients from a thread per
connection — the store layer's locks (added for exactly this) make the
readers safe, and the cache turns a hot key set into pure in-memory
bisects no matter which connection asked first.

The wire protocol is newline-delimited JSON — one request object per
line, one response object per line, over a plain TCP socket.  The request
schema is the unified one served by
:class:`~repro.ngramstore.api.QueryEngine` (shared verbatim with the HTTP
adapter in :mod:`repro.ngramstore.http`)::

    -> {"op": "get", "key": [3, 7]}
    <- {"ok": true, "found": true, "value": 42}

    -> {"op": "multi_get", "keys": [[3, 7], [9]]}
    <- {"ok": true, "found": [true, false], "values": [42, null]}

    -> {"op": "prefix", "key": [3], "limit": 100}
    <- {"ok": true, "records": [[[3, 7], 42], ...], "truncated": false}

    -> {"op": "multi_prefix", "keys": [[3], [9]], "limit": 100}
    <- {"ok": true, "results": [{"records": [...], "truncated": false}, ...]}

    -> {"op": "top_k", "k": 10, "order": "frequency"}
    <- {"ok": true, "records": [[[0], 981], ...]}

    -> {"op": "translate", "terms": [["the", "quick"]]}
    <- {"ok": true, "keys": [[0, 17]]}          # null for unknown terms

    -> {"op": "render", "ngrams": [[0, 17]]}
    <- {"ok": true, "terms": [["the", "quick"]]}

    -> {"op": "stats"} | {"op": "server_stats"} | {"op": "ping"}

Keys travel as JSON arrays of term identifiers (the store's native keys);
term-keyed variants (``"terms"`` instead of ``"key"``/``"keys"``, or
``"surface": true`` on ``top_k``) run the vocabulary translation
server-side, where the dictionary lives.  The pre-redesign spellings
``"ngram"`` (get) and ``"tokens"`` (prefix) are still served, flagged
with a ``"deprecated"`` note in the response.  Failures come back as
``{"ok": false, "error": ...}`` on the same stream, so one bad request
does not cost the connection.  :class:`StoreClient` is the in-repo
client: a :class:`~repro.ngramstore.api.RemoteStore` that speaks the
protocol and hands back the canonical records, exactly what
:class:`NGramStore` itself returns — the serve-smoke CI step asserts that
equivalence byte for byte.

Newline-JSON is the *fallback*; the preferred framing is the binary
protocol of :mod:`repro.ngramstore.wire`, negotiated on connect: a
binary-capable client opens with the ``NGWIRE1\\n`` magic line, a
binary-capable server answers with a framed hello and both sides switch
to varint-framed binary messages carrying the same request/response
objects.  A legacy JSON server parses the magic as a malformed request
and answers an error line — the client sees the ``{`` byte, consumes the
line and falls back to JSON.  A legacy JSON client never sends the magic
and is served exactly as before.  Both framings feed the same
:class:`QueryEngine`, so answers are value-identical by construction.
"""

from __future__ import annotations

import json
import math
import os
import socket
import threading
import time
import warnings
from typing import Any, Dict, List, Optional, Tuple

from repro.config import ServerConfig
from repro.exceptions import SerializationError, StoreConnectionError, StoreError
from repro.ngramstore.api import (
    MAX_PREFIX_RECORDS,
    MAX_TOP_K,
    OPERATIONS,
    QueryEngine,
    RemoteStore,
    normalize_request,
)
from repro.ngramstore.reader import NGramStore
from repro.ngramstore.table import BlockCache
from repro.ngramstore.wire import (
    WIRE_MAGIC,
    encode_hello,
    encode_message,
    read_message,
)

__all__ = [
    "MAX_PREFIX_RECORDS",
    "MAX_REQUEST_BYTES",
    "MAX_TOP_K",
    "NGramStoreServer",
    "OPERATIONS",
    "ServerMetrics",
    "StoreClient",
    "build_cache_summary",
    "percentile",
]

Record = Tuple[Any, Any]

#: Largest accepted request line; anything longer is a protocol error.
MAX_REQUEST_BYTES = 1 << 20

#: Latency samples retained per operation for percentile reporting; counts
#: and totals keep accumulating after the reservoir is full.
LATENCY_SAMPLE_CAP = 100_000


def percentile(sorted_samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sample list (must be non-empty)."""
    rank = max(1, min(len(sorted_samples), math.ceil(len(sorted_samples) * fraction)))
    return sorted_samples[rank - 1]


class ServerMetrics:
    """Thread-safe per-operation request counts and latency aggregates."""

    def __init__(self, sample_cap: int = LATENCY_SAMPLE_CAP) -> None:
        self._lock = threading.Lock()
        self._sample_cap = sample_cap
        self._operations: Dict[str, Dict[str, Any]] = {}
        self.connections_accepted = 0
        self.requests = 0
        self.errors = 0
        self.started_at = time.time()

    def record_connection(self) -> None:
        with self._lock:
            self.connections_accepted += 1

    def record(self, operation: str, seconds: float, ok: bool) -> None:
        with self._lock:
            entry = self._operations.setdefault(
                operation, {"count": 0, "errors": 0, "total_s": 0.0, "samples": []}
            )
            entry["count"] += 1
            entry["total_s"] += seconds
            if not ok:
                entry["errors"] += 1
                self.errors += 1
            if len(entry["samples"]) < self._sample_cap:
                entry["samples"].append(seconds)
            self.requests += 1

    def snapshot(self) -> Dict[str, Any]:
        """Aggregated counters plus latency percentiles, JSON-ready."""
        # Copy under the lock, sort outside it: sorting up to sample_cap
        # floats must not stall every request thread waiting on record().
        with self._lock:
            copied = {
                operation: (entry["count"], entry["errors"], entry["total_s"], list(entry["samples"]))
                for operation, entry in self._operations.items()
            }
            totals = {
                "uptime_s": round(time.time() - self.started_at, 3),
                "connections_accepted": self.connections_accepted,
                "requests": self.requests,
                "errors": self.errors,
            }
        operations = {}
        for operation, (count, errors, total_s, samples) in copied.items():
            samples.sort()
            summary = {
                "count": count,
                "errors": errors,
                "total_ms": round(total_s * 1e3, 3),
                "mean_us": round(total_s / count * 1e6, 1),
            }
            if samples:
                summary.update(
                    {
                        "p50_us": round(percentile(samples, 0.50) * 1e6, 1),
                        "p90_us": round(percentile(samples, 0.90) * 1e6, 1),
                        "p99_us": round(percentile(samples, 0.99) * 1e6, 1),
                        "max_us": round(samples[-1] * 1e6, 1),
                    }
                )
            operations[operation] = summary
        totals["operations"] = operations
        return totals


def build_cache_summary(store: Any, cache: Optional[BlockCache]) -> Dict[str, Any]:
    """Block-cache counters, JSON-ready (the ``server_stats`` cache shape).

    ``store.cache_stats()`` covers both layouts — the shared cache's
    counters, or the per-table aggregate for caller-managed stores;
    capacity/residency only exist when one shared cache is in play.
    Shared between the socket server and the HTTP adapter so both report
    the same shape.
    """
    stats = store.cache_stats()
    summary: Dict[str, Any] = {
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "hit_rate": round(stats.hit_rate, 6),
    }
    if cache is not None:
        summary["capacity_blocks"] = cache.capacity
        summary["resident_blocks"] = len(cache)
    return summary


class NGramStoreServer:
    """Serves one store to concurrent socket clients; see the module docstring.

    ``max_clients`` bounds the handler threads: when every slot is busy the
    accept loop simply stops accepting, so excess connections queue in the
    listen backlog (backpressure) instead of failing or piling up threads.
    """

    def __init__(
        self,
        store: Any,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        if isinstance(store, (str, os.PathLike)):
            self.cache = BlockCache(self.config.cache_blocks)
            self.store = NGramStore.open(str(store), cache=self.cache)
        else:
            # Caller-managed store (an NGramStore, or a ShardView over
            # one): its cache setup is its own business — self.cache is
            # None when it uses private per-table caches, so stats
            # reporting falls back to the store's aggregation instead of
            # an orphan cache no table feeds.
            self.store = store
            self.cache = getattr(store, "cache", None)
        self.engine = QueryEngine(self.store)
        self.metrics = ServerMetrics()
        self.host = self.config.host
        self.port = self.config.port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._slots = threading.Semaphore(self.config.max_clients)
        self._shutdown = threading.Event()
        self._connections: "set[socket.socket]" = set()
        self._connections_lock = threading.Lock()

    # ----------------------------------------------------------- lifecycle
    def start(self) -> Tuple[str, int]:
        """Bind, listen and serve in background threads; returns (host, port)."""
        if self._listener is not None:
            raise StoreError("server already started")
        self._listener = socket.create_server(
            (self.host, self.port), backlog=self.config.max_clients
        )
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ngramstore-accept", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def close(self) -> None:
        """Stop accepting, drop open connections, close the store."""
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        if self._listener is not None:
            # shutdown() before close(): on Linux, close() alone does not
            # wake a thread blocked in accept() — it would sit there until
            # the next (never-coming) connection.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self.store.close()

    def __enter__(self) -> "NGramStoreServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def cache_summary(self) -> Dict[str, Any]:
        """Block-cache counters, JSON-ready (the ``server_stats`` shape).

        The shared cache object outlives a closed store, so the CLI can
        still build its shutdown report from this.
        """
        return build_cache_summary(self.store, self.cache)

    # ------------------------------------------------------------- serving
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            # A free handler slot is a precondition for accepting: the
            # kernel backlog, not a thread pile-up, absorbs bursts beyond
            # max_clients.
            self._slots.acquire()
            try:
                connection, _ = self._listener.accept()
            except OSError:
                self._slots.release()
                if self._shutdown.is_set():
                    return
                # Transient accept failures (ECONNABORTED from a client
                # resetting in the backlog, EMFILE under fd pressure) must
                # not permanently stop a live server; back off and retry.
                time.sleep(0.05)
                continue
            if self._shutdown.is_set():
                connection.close()
                self._slots.release()
                return
            self.metrics.record_connection()
            with self._connections_lock:
                self._connections.add(connection)
            handler = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="ngramstore-client",
                daemon=True,
            )
            try:
                handler.start()
            except RuntimeError:
                # Thread exhaustion: drop this connection, keep serving.
                with self._connections_lock:
                    self._connections.discard(connection)
                connection.close()
                self._slots.release()

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            reader = connection.makefile("rb")
            with reader:
                first_line = True
                while not self._shutdown.is_set():
                    line = reader.readline(MAX_REQUEST_BYTES + 1)
                    if not line:
                        return
                    if (
                        first_line
                        and self.config.binary
                        and line.rstrip(b"\r\n") == WIRE_MAGIC
                    ):
                        # Binary-capable client: answer the hello frame and
                        # switch the whole connection to binary framing.
                        self._serve_binary(connection, reader)
                        return
                    first_line = False
                    if len(line) > MAX_REQUEST_BYTES:
                        self._respond(
                            connection,
                            {"ok": False, "error": "request exceeds 1 MiB"},
                        )
                        return
                    try:
                        request: Any = json.loads(line)
                    except ValueError as error:
                        request = StoreError(f"request is not valid JSON: {error}")
                    if not self._respond(connection, self._execute(request)):
                        return
        except OSError:
            pass  # client went away (or shutdown closed the socket underneath)
        finally:
            with self._connections_lock:
                self._connections.discard(connection)
            try:
                connection.close()
            except OSError:
                pass
            self._slots.release()

    def _serve_binary(self, connection: socket.socket, reader: Any) -> None:
        """Serve one negotiated binary connection until it closes.

        Framing errors (truncated, oversized or undecodable frames) end
        the connection after one in-stream error message — past the frame
        boundary nothing can be trusted, exactly like an unterminated JSON
        line.  Requests that *decode* but are invalid are answered
        in-stream and the connection lives on.
        """
        connection.sendall(encode_hello())
        while not self._shutdown.is_set():
            try:
                request = read_message(reader, MAX_REQUEST_BYTES)
            except SerializationError as error:
                self._respond_binary(connection, {"ok": False, "error": f"{error}"})
                return
            if request is None:
                return
            if not self._respond_binary(connection, self._execute(request)):
                return

    def _execute(self, request: Any) -> Dict[str, Any]:
        """One decoded request -> one response dict, with metrics recorded.

        Shared by both framings — the protocols differ only in how bytes
        become the request object and how the response object becomes
        bytes.  Pass an exception as ``request`` to report a decode
        failure through the same error/metrics path.
        """
        started = time.perf_counter()
        operation = "invalid"
        try:
            if isinstance(request, Exception):
                raise request
            if not isinstance(request, dict):
                raise StoreError("request must be a JSON object")
            operation = str(request.get("op"))
            response = self._handle(operation, request)
            response["ok"] = True
        except (StoreError, KeyError, TypeError, ValueError) as error:
            response = {"ok": False, "error": f"{error}"}
        ok = response.get("ok", False)
        # Clamp to the known set: client-chosen strings must not
        # grow the metrics dict without bound on a long-lived server.
        bucket = operation if operation in OPERATIONS else "invalid"
        self.metrics.record(bucket, time.perf_counter() - started, ok)
        return response

    def _respond(self, connection: socket.socket, response: Dict[str, Any]) -> bool:
        try:
            payload = json.dumps(response, separators=(",", ":"))
        except (TypeError, ValueError) as error:
            # Non-JSON-serialisable store values (arbitrary build_store
            # payloads) are a per-request failure, not a dead connection.
            payload = json.dumps(
                {"ok": False, "error": f"value is not JSON-serialisable: {error}"}
            )
        try:
            connection.sendall(payload.encode("utf-8") + b"\n")
            return True
        except OSError:
            return False

    def _respond_binary(self, connection: socket.socket, response: Dict[str, Any]) -> bool:
        try:
            message = encode_message(response)
        except SerializationError as error:
            # Mirror of the JSON path's non-serialisable-value fallback.
            message = encode_message(
                {"ok": False, "error": f"value is not wire-serialisable: {error}"}
            )
        try:
            connection.sendall(message)
            return True
        except OSError:
            return False

    # ------------------------------------------------------------ handlers
    def _handle(self, operation: str, request: Dict[str, Any]) -> Dict[str, Any]:
        """One request dict -> one response dict (without the ``ok`` field).

        ``server_stats`` is transport state (metrics, cache, connections)
        and is answered here; every store query goes through the shared
        :class:`QueryEngine`, after :func:`normalize_request` maps legacy
        field spellings onto the unified schema.
        """
        if operation == "server_stats":
            snapshot = self.metrics.snapshot()
            snapshot["cache"] = self.cache_summary()
            with self._connections_lock:
                snapshot["active_connections"] = len(self._connections)
            return snapshot
        request, deprecated = normalize_request(request)
        response = self.engine.handle(request)
        if deprecated:
            response["deprecated"] = deprecated
        return response


class StoreClient(RemoteStore):
    """Socket client for :class:`NGramStoreServer`'s newline-JSON protocol.

    A :class:`~repro.ngramstore.api.RemoteStore`: the full ``StoreAPI``
    surface over one TCP connection, returning the canonical records
    (tuple-compatible with the pre-redesign plain tuples).  One instance
    owns one connection and is not itself thread-safe; concurrent callers
    each open their own (the server is built for many connections).

    Connection handling is resilient by default because every operation
    is an idempotent read: the initial connect retries ``max_retries``
    times with exponential ``backoff`` (a server still binding its socket
    answers ``ECONNREFUSED`` for a moment), and a dropped connection
    mid-stream (server restart, idle reset) triggers a bounded
    reconnect-and-resend instead of failing the first caller.  A dead
    endpoint surfaces as :class:`StoreConnectionError`, which replica
    pools treat as "fail over", unlike an application
    :class:`StoreError` the server answered.

    ``timeout=`` is the deprecated pre-redesign knob: it set one budget
    for both connecting and reading.  Pass ``connect_timeout`` /
    ``read_timeout`` instead.

    ``protocol`` selects the wire framing: ``"auto"`` (the default) opens
    with the binary magic and falls back to newline-JSON when the server
    turns out not to speak it; ``"binary"`` requires the binary protocol
    (a JSON-only server is an error); ``"json"`` skips negotiation and
    speaks newline-JSON, byte-compatible with pre-binary clients.  The
    negotiated mode is visible as ``negotiated_protocol``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        *,
        connect_timeout: float = 5.0,
        read_timeout: float = 30.0,
        max_retries: int = 2,
        backoff: float = 0.05,
        protocol: str = "auto",
    ) -> None:
        if timeout is not None:
            warnings.warn(
                "StoreClient(timeout=...) is deprecated; use connect_timeout= "
                "and read_timeout=",
                DeprecationWarning,
                stacklevel=2,
            )
            connect_timeout = timeout
            read_timeout = timeout
        if max_retries < 0:
            raise StoreError(f"max_retries must be >= 0, got {max_retries}")
        if protocol not in ("auto", "binary", "json"):
            raise StoreError(
                f"protocol must be 'auto', 'binary' or 'json', got {protocol!r}"
            )
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.protocol = protocol
        self.negotiated_protocol: Optional[str] = None
        self._socket: Optional[socket.socket] = None
        self._reader: Optional[Any] = None
        self._closed = False
        self._connect()

    # ------------------------------------------------------------ plumbing
    def _drop(self) -> None:
        """Forget the current connection (it is broken or being replaced)."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
            self._socket = None

    def _connect(self) -> None:
        """Establish the connection, retrying refused/reset attempts.

        ``ECONNREFUSED`` right after a server (re)start is a timing
        artifact, not a verdict — a bounded backoff loop absorbs it; a
        server that is truly gone becomes :class:`StoreConnectionError`
        after the last attempt.
        """
        self._drop()
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            try:
                self._socket = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                self._socket.settimeout(self.read_timeout)
                self._reader = self._socket.makefile("rb")
                if self.protocol == "json":
                    self.negotiated_protocol = "json"
                else:
                    self._negotiate()
                return
            except OSError as error:
                self._drop()
                if attempt + 1 >= attempts:
                    raise StoreConnectionError(
                        f"cannot connect to store server {self.host}:{self.port} "
                        f"after {attempts} attempts: {error}"
                    ) from error
                time.sleep(self.backoff * (2 ** attempt))

    def _negotiate(self) -> None:
        """Offer the binary protocol; settle on what the server speaks.

        The magic line is newline-terminated, so a legacy JSON server
        parses it as one malformed request and answers an error line —
        which necessarily starts with ``{``, a byte no binary hello frame
        starts with (see :func:`repro.ngramstore.wire.encode_hello`).
        Peeking that one byte tells the two servers apart without ever
        desynchronising either stream.
        """
        self._socket.sendall(WIRE_MAGIC + b"\n")
        peeked = self._reader.peek(1)
        if not peeked:
            raise ConnectionResetError("server closed during protocol negotiation")
        if peeked[:1] == b"{":
            # Legacy JSON server: it answered the magic with an error
            # line.  Consume it and fall back (or fail, if binary was
            # explicitly required).
            self._reader.readline()
            if self.protocol == "binary":
                raise StoreConnectionError(
                    f"store server {self.host}:{self.port} does not speak the "
                    "binary protocol (protocol='binary' was required)"
                )
            self.negotiated_protocol = "json"
            return
        hello = read_message(self._reader, MAX_REQUEST_BYTES)
        if not isinstance(hello, dict) or hello.get("protocol") != "binary":
            raise StoreConnectionError(
                f"store server {self.host}:{self.port} sent a malformed "
                f"binary hello: {hello!r}"
            )
        self.negotiated_protocol = "binary"

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise StoreError("client is closed")
        attempts = self.max_retries + 1
        response: Any = None
        for attempt in range(attempts):
            try:
                if self._socket is None:
                    self._connect()
                response = self._exchange(request)
                break
            except (OSError, SerializationError) as error:
                # Reads are idempotent, so resending after a reconnect is
                # safe; a connection that stays dead through the retry
                # budget is a dead endpoint.  A framing error
                # (SerializationError) means the stream cannot be trusted
                # past this point — same remedy, reconnect.
                self._drop()
                if attempt + 1 >= attempts:
                    raise StoreConnectionError(
                        f"lost connection to store server {self.host}:{self.port}: "
                        f"{error}"
                    ) from error
                time.sleep(self.backoff * (2 ** attempt))
        if not response.get("ok"):
            raise StoreError(f"server error: {response.get('error', 'unknown')}")
        return response

    def _exchange(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and read its response on the live connection."""
        if self.negotiated_protocol == "binary":
            self._socket.sendall(encode_message(request))
            response = read_message(self._reader)
            if response is None:
                raise ConnectionResetError("server closed the connection")
            if not isinstance(response, dict):
                raise SerializationError(
                    f"binary response is {type(response).__name__}, expected dict"
                )
            return response
        payload = json.dumps(request, separators=(",", ":")).encode("utf-8") + b"\n"
        self._socket.sendall(payload)
        line = self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        return json.loads(line)

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._closed = True
        self._drop()

    def __enter__(self) -> "StoreClient":
        return self
