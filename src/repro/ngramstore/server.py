"""Long-lived query server over one shared :class:`NGramStore`.

The north star is serving n-gram statistics to many consumers, and the
``query`` CLI opens (and throws away) a store per invocation.
:class:`NGramStoreServer` keeps one store open in one process, shares a
single process-wide LRU :class:`~repro.ngramstore.table.BlockCache` across
every partition, and serves concurrent clients from a thread per
connection — the store layer's locks (added for exactly this) make the
readers safe, and the cache turns a hot key set into pure in-memory
bisects no matter which connection asked first.

The wire protocol is newline-delimited JSON — one request object per
line, one response object per line, over a plain TCP socket.  The request
schema is the unified one served by
:class:`~repro.ngramstore.api.QueryEngine` (shared verbatim with the HTTP
adapter in :mod:`repro.ngramstore.http`)::

    -> {"op": "get", "key": [3, 7]}
    <- {"ok": true, "found": true, "value": 42}

    -> {"op": "multi_get", "keys": [[3, 7], [9]]}
    <- {"ok": true, "found": [true, false], "values": [42, null]}

    -> {"op": "prefix", "key": [3], "limit": 100}
    <- {"ok": true, "records": [[[3, 7], 42], ...], "truncated": false}

    -> {"op": "multi_prefix", "keys": [[3], [9]], "limit": 100}
    <- {"ok": true, "results": [{"records": [...], "truncated": false}, ...]}

    -> {"op": "top_k", "k": 10, "order": "frequency"}
    <- {"ok": true, "records": [[[0], 981], ...]}

    -> {"op": "complete", "terms": ["new", "york"], "k": 5}
    <- {"ok": true, "completions": [["times", 87], ...], "truncated": false}

    -> {"op": "compare", "key": [3, 7]}       # needs serve --extra-store
    <- {"ok": true, "found_a": true, "value_a": 42,
        "found_b": false, "value_b": null}

    -> {"op": "translate", "terms": [["the", "quick"]]}
    <- {"ok": true, "keys": [[0, 17]]}          # null for unknown terms

    -> {"op": "render", "ngrams": [[0, 17]]}
    <- {"ok": true, "terms": [["the", "quick"]]}

    -> {"op": "stats"} | {"op": "server_stats"} | {"op": "ping"}

Keys travel as JSON arrays of term identifiers (the store's native keys);
term-keyed variants (``"terms"`` instead of ``"key"``/``"keys"``, or
``"surface": true`` on ``top_k``) run the vocabulary translation
server-side, where the dictionary lives.  The pre-redesign spellings
``"ngram"`` (get) and ``"tokens"`` (prefix) are still served, flagged
with a ``"deprecated"`` note in the response.  Failures come back as
``{"ok": false, "error": ...}`` on the same stream, so one bad request
does not cost the connection.  :class:`StoreClient` is the in-repo
client: a :class:`~repro.ngramstore.api.RemoteStore` that speaks the
protocol and hands back the canonical records, exactly what
:class:`NGramStore` itself returns — the serve-smoke CI step asserts that
equivalence byte for byte.

Newline-JSON is the *fallback*; the preferred framing is the binary
protocol of :mod:`repro.ngramstore.wire`, negotiated on connect: a
binary-capable client opens with the ``NGWIRE1\\n`` magic line, a
binary-capable server answers with a framed hello and both sides switch
to varint-framed binary messages carrying the same request/response
objects.  A legacy JSON server parses the magic as a malformed request
and answers an error line — the client sees the ``{`` byte, consumes the
line and falls back to JSON.  A legacy JSON client never sends the magic
and is served exactly as before.  Both framings feed the same
:class:`QueryEngine`, so answers are value-identical by construction.
"""

from __future__ import annotations

import json
import math
import os
import socket
import threading
import time
import warnings
from typing import Any, Dict, List, Optional, Tuple

from repro.config import ServerConfig
from repro.exceptions import SerializationError, StoreConnectionError, StoreError
from repro.ngramstore.api import (
    MAX_PREFIX_RECORDS,
    MAX_TOP_K,
    OPERATIONS,
    QueryEngine,
    RemoteStore,
    ensure_comparable_vocabulary,
    normalize_request,
)
from repro.ngramstore.reader import NGramStore
from repro.ngramstore.table import BlockCache
from repro.ngramstore.wire import (
    WIRE_MAGIC,
    encode_hello,
    encode_message,
    read_message,
)
from repro.util.metrics import MetricsRegistry, snapshot_quantile
from repro.util.timer import Stopwatch
from repro.util.tracing import SlowQueryLog, TraceContext, attach_trace

__all__ = [
    "MAX_PREFIX_RECORDS",
    "MAX_REQUEST_BYTES",
    "MAX_TOP_K",
    "NGramStoreServer",
    "OPERATIONS",
    "ServerMetrics",
    "StoreClient",
    "build_cache_summary",
    "percentile",
    "register_store_observables",
    "render_server_metrics",
    "request_key_count",
]

Record = Tuple[Any, Any]

#: Largest accepted request line; anything longer is a protocol error.
MAX_REQUEST_BYTES = 1 << 20

#: Operations that read blocks — the ones worth per-request I/O deltas.
_READ_OPERATIONS = frozenset(
    ("get", "multi_get", "prefix", "multi_prefix", "top_k", "complete", "compare")
)


def percentile(sorted_samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sample list (must be non-empty)."""
    rank = max(1, min(len(sorted_samples), math.ceil(len(sorted_samples) * fraction)))
    return sorted_samples[rank - 1]


def request_key_count(request: Any) -> int:
    """How many keys a request asks about (for slow-query log lines)."""
    if not isinstance(request, dict):
        return 0
    for field in ("keys", "ngrams"):
        value = request.get(field)
        if isinstance(value, list):
            return len(value)
    terms = request.get("terms")
    if isinstance(terms, list):
        # "terms" is either one surface key (list of strings) or a batch
        # of them (list of lists, for multi_get / translate).
        if terms and isinstance(terms[0], list):
            return len(terms)
        return 1
    if isinstance(request.get("key"), list):
        return 1
    return 0


class ServerMetrics:
    """Thread-safe per-operation request counts and latency aggregates.

    Backed by a :class:`~repro.util.metrics.MetricsRegistry` (a private
    one unless the caller shares one in): per-operation counters, error
    counters, and fixed-bucket latency histograms, plus per-stage
    histograms fed by request tracing.  The :meth:`snapshot` shape is the
    pre-registry one (``server_stats`` consumers keep working), but the
    percentiles now derive from the histograms — every observation ever
    made weighs in, unlike the old capped sample list that kept only the
    *first* N observations and therefore reported warm-up latency
    forever.  The registry itself is exposed as ``.registry`` so the
    owning server can hang scrape-time gauges (cache, I/O, connections)
    off the same exposition surface.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.started_at = time.time()
        self._requests = self.registry.counter(
            "ngramstore_requests_total", "Requests served, by operation", labels=("op",)
        )
        self._request_errors = self.registry.counter(
            "ngramstore_request_errors_total",
            "Requests answered with an error, by operation",
            labels=("op",),
        )
        self._latency = self.registry.histogram(
            "ngramstore_request_seconds",
            "Request latency in seconds, by operation",
            labels=("op",),
        )
        self._stages = self.registry.histogram(
            "ngramstore_stage_seconds",
            "Per-request stage latency in seconds (parse/route/block_read/decode)",
            labels=("stage",),
        )
        self._connections = self.registry.counter(
            "ngramstore_connections_total", "Client connections accepted"
        )

    # Pre-registry attribute surface, preserved for existing consumers.
    @property
    def connections_accepted(self) -> int:
        return int(self._connections.value())

    @property
    def requests(self) -> int:
        return int(self._requests.total())

    @property
    def errors(self) -> int:
        return int(self._request_errors.total())

    def record_connection(self) -> None:
        self._connections.inc()

    def record(self, operation: str, seconds: float, ok: bool) -> None:
        self._requests.inc(op=operation)
        if not ok:
            self._request_errors.inc(op=operation)
        self._latency.observe(seconds, op=operation)

    def record_stage(self, stage: str, seconds: float) -> None:
        self._stages.observe(seconds, stage=stage)

    def snapshot(self) -> Dict[str, Any]:
        """Aggregated counters plus histogram-derived percentiles, JSON-ready."""
        counts = {
            series["labels"]["op"]: int(series["value"])
            for series in self._requests.snapshot()
        }
        errors = {
            series["labels"]["op"]: int(series["value"])
            for series in self._request_errors.snapshot()
        }
        operations: Dict[str, Any] = {}
        for series in self._latency.snapshot():
            operation = series["labels"]["op"]
            count = series["count"]
            if count == 0:
                continue
            total_s = series["sum"]
            operations[operation] = {
                "count": counts.get(operation, count),
                "errors": errors.get(operation, 0),
                "total_ms": round(total_s * 1e3, 3),
                "mean_us": round(total_s / count * 1e6, 1),
                "p50_us": round(snapshot_quantile(series, 0.50) * 1e6, 1),
                "p90_us": round(snapshot_quantile(series, 0.90) * 1e6, 1),
                "p99_us": round(snapshot_quantile(series, 0.99) * 1e6, 1),
                "max_us": round(series["max"] * 1e6, 1),
            }
        stages: Dict[str, Any] = {}
        for series in self._stages.snapshot():
            count = series["count"]
            if count == 0:
                continue
            stages[series["labels"]["stage"]] = {
                "count": count,
                "total_ms": round(series["sum"] * 1e3, 3),
                "mean_us": round(series["sum"] / count * 1e6, 1),
                "p50_us": round(snapshot_quantile(series, 0.50) * 1e6, 1),
                "p99_us": round(snapshot_quantile(series, 0.99) * 1e6, 1),
            }
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "connections_accepted": self.connections_accepted,
            "requests": self.requests,
            "errors": self.errors,
            "operations": operations,
            "stages": stages,
        }


def build_cache_summary(store: Any, cache: Optional[BlockCache]) -> Dict[str, Any]:
    """Block-cache counters, JSON-ready (the ``server_stats`` cache shape).

    ``store.cache_stats()`` covers both layouts — the shared cache's
    counters, or the per-table aggregate for caller-managed stores;
    capacity/residency only exist when one shared cache is in play.
    Shared between the socket server and the HTTP adapter so both report
    the same shape.
    """
    stats = store.cache_stats()
    summary: Dict[str, Any] = {
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "hit_rate": round(stats.hit_rate, 6),
    }
    if cache is not None:
        summary["capacity_blocks"] = cache.capacity
        summary["resident_blocks"] = len(cache)
    return summary


def register_store_observables(
    registry: MetricsRegistry,
    store: Any,
    cache: Optional[BlockCache],
    active_connections: Any = None,
) -> None:
    """Hang scrape-time gauges for a served store off ``registry``.

    The block cache, the reader's I/O counters and the connection set all
    keep live state of their own; callback gauges read them at scrape
    time instead of mirroring every mutation, so the hot path pays
    nothing for exposition.  Shared by the socket server and the HTTP
    adapter so both expose the same catalog.
    """
    if hasattr(store, "cache_stats"):
        cache_events = registry.gauge(
            "ngramstore_block_cache_events",
            "Block cache counters since startup (monotonic)",
            labels=("event",),
        )

        def _cache_stat(field: str) -> Any:
            return lambda: float(getattr(store.cache_stats(), field))

        for event in ("hits", "misses", "evictions"):
            cache_events.set_callback(_cache_stat(event), event=event)
    if cache is not None:
        registry.gauge(
            "ngramstore_block_cache_capacity_blocks", "Shared block cache capacity"
        ).set_callback(lambda: float(cache.capacity))
        registry.gauge(
            "ngramstore_block_cache_resident_blocks", "Blocks currently cached"
        ).set_callback(lambda: float(len(cache)))
    if hasattr(store, "io_stats"):
        io_events = registry.gauge(
            "ngramstore_io_events",
            "Store I/O counters since startup: blocks decoded, bloom-filter "
            "rejections, mmap-served partitions, cumulative decode seconds",
            labels=("event",),
        )

        def _io_stat(field: str) -> Any:
            return lambda: float(store.io_stats().get(field, 0))

        for event in (
            "blocks_decoded",
            "bloom_rejections",
            "blocks_checksum_failed",
            "mmap_partitions",
            "decode_seconds",
        ):
            io_events.set_callback(_io_stat(event), event=event)
    if hasattr(store, "manifest"):
        registry.gauge(
            "ngramstore_store_records", "Records served by this store"
        ).set_callback(lambda: float(store.stats()["num_records"]))
        registry.gauge(
            "ngramstore_store_partitions", "Partitions served by this store"
        ).set_callback(lambda: float(store.stats()["num_partitions"]))
    if hasattr(store, "shard_index"):
        shard = registry.gauge(
            "ngramstore_shard", "Shard identity of this server", labels=("field",)
        )
        shard.set_callback(lambda: float(store.shard_index), field="index")
        shard.set_callback(lambda: float(store.num_shards), field="num_shards")
    if active_connections is not None:
        registry.gauge(
            "ngramstore_active_connections", "Open client connections"
        ).set_callback(lambda: float(active_connections()))


def collect_io_counters(store: Any, operation: str) -> Optional[Dict[str, float]]:
    """Live I/O + cache counters, for per-request deltas on read operations.

    ``None`` for operations that never touch blocks (ping, stats, ...) or
    stores that expose neither surface — callers skip the delta entirely.
    """
    if operation not in _READ_OPERATIONS:
        return None
    counters: Dict[str, float] = {}
    if hasattr(store, "io_stats"):
        counters.update(store.io_stats())
    if hasattr(store, "cache_stats"):
        stats = store.cache_stats()
        counters["cache_hits"] = stats.hits
        counters["cache_misses"] = stats.misses
    return counters or None


def finish_request_observation(
    metrics: ServerMetrics,
    slow_log: Optional[SlowQueryLog],
    trace: TraceContext,
    bucket: str,
    request: Any,
    elapsed: float,
    ok: bool,
    io_before: Optional[Dict[str, float]],
    io_after: Optional[Dict[str, float]],
) -> None:
    """One request's tail: metrics, stage histograms, maybe a slow-log line.

    Shared by the socket server and the HTTP adapter so stage attribution
    and the slow-query record shape cannot drift between transports.  When
    I/O counters were captured around the request, the engine's ``read``
    stage is split into ``block_read`` vs ``decode`` using the decode-time
    the store accumulated — the counters are process-wide, so under
    concurrent load the attribution is approximate; over a slow request's
    many blocks it is still the signal that matters.
    """
    io_delta: Optional[Dict[str, float]] = None
    if io_before is not None:
        io_delta = {
            field: (io_after or {}).get(field, 0) - before
            for field, before in io_before.items()
        }
        read_seconds = trace.stages.pop("read", None)
        decode_delta = io_delta.pop("decode_seconds", 0.0)
        if read_seconds is not None:
            decode = max(0.0, min(read_seconds, decode_delta))
            trace.add_stage("decode", decode)
            trace.add_stage("block_read", read_seconds - decode)
    metrics.record(bucket, elapsed, ok)
    for stage, seconds in trace.stages.items():
        metrics.record_stage(stage, seconds)
    if slow_log is not None and slow_log.should_log(elapsed):
        entry: Dict[str, Any] = {
            "trace_id": trace.trace_id,
            "op": bucket,
            "ok": ok,
            "duration_ms": round(elapsed * 1e3, 3),
            "key_count": request_key_count(request),
            "stages_ms": trace.stages_ms(),
        }
        if io_delta is not None:
            entry["io"] = {
                field: round(value, 6) if isinstance(value, float) else value
                for field, value in io_delta.items()
            }
        slow_log.record(entry)


def render_server_metrics(metrics: ServerMetrics, store: Any) -> str:
    """The full Prometheus exposition for one server.

    A store that is itself an observable component (a
    :class:`~repro.ngramstore.router.ShardRouter` or
    :class:`~repro.ngramstore.router.ReplicaPool` fronted by this server)
    carries its own ``metrics_registry``; its series are appended so a
    gateway deployment exposes router fan-out and quarantine series from
    the same ``/metrics`` scrape.
    """
    text = metrics.registry.render_prometheus()
    store_registry = getattr(store, "metrics_registry", None)
    if store_registry is not None and store_registry is not metrics.registry:
        text += store_registry.render_prometheus()
    return text


class NGramStoreServer:
    """Serves one store to concurrent socket clients; see the module docstring.

    ``max_clients`` bounds the handler threads: when every slot is busy the
    accept loop simply stops accepting, so excess connections queue in the
    listen backlog (backpressure) instead of failing or piling up threads.
    """

    def __init__(
        self,
        store: Any,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        if isinstance(store, (str, os.PathLike)):
            from repro.ngramstore.lsm import open_store_auto

            self.cache = BlockCache(self.config.cache_blocks)
            # Auto-detects the directory kind: a plain store opens as an
            # NGramStore, an LSM directory as a GenerationView over its
            # live generations — the serving tier is ingestion-agnostic.
            self.store = open_store_auto(str(store), cache=self.cache)
        else:
            # Caller-managed store (an NGramStore, or a ShardView over
            # one): its cache setup is its own business — self.cache is
            # None when it uses private per-table caches, so stats
            # reporting falls back to the store's aggregation instead of
            # an orphan cache no table feeds.
            self.store = store
            self.cache = getattr(store, "cache", None)
        self.extra_store: Any = None
        if self.config.extra_store is not None:
            from repro.ngramstore.lsm import open_store_auto

            # The comparison store shares the process-wide block cache when
            # one exists (entries are namespaced by path, so the two stores
            # never collide) and must speak the served store's vocabulary.
            try:
                self.extra_store = open_store_auto(
                    self.config.extra_store, cache=self.cache
                )
                ensure_comparable_vocabulary(self.store, self.extra_store)
            except Exception:
                if self.extra_store is not None:
                    self.extra_store.close()
                self.store.close()
                raise
        self.engine = QueryEngine(self.store, extra_store=self.extra_store)
        self.metrics = ServerMetrics()
        self.slow_log: Optional[SlowQueryLog] = None
        if self.config.slow_query_ms is not None:
            self.slow_log = SlowQueryLog(
                self.config.slow_query_ms, self.config.slow_query_log
            )
        self.host = self.config.host
        self.port = self.config.port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._slots = threading.Semaphore(self.config.max_clients)
        self._shutdown = threading.Event()
        self._connections: "set[socket.socket]" = set()
        self._connections_lock = threading.Lock()
        register_store_observables(
            self.metrics.registry, self.store, self.cache, self._active_connections
        )

    def _active_connections(self) -> int:
        with self._connections_lock:
            return len(self._connections)

    # ----------------------------------------------------------- lifecycle
    def start(self) -> Tuple[str, int]:
        """Bind, listen and serve in background threads; returns (host, port)."""
        if self._listener is not None:
            raise StoreError("server already started")
        self._listener = socket.create_server(
            (self.host, self.port), backlog=self.config.max_clients
        )
        self.port = self._listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ngramstore-accept", daemon=True
        )
        self._accept_thread.start()
        return self.host, self.port

    def close(self) -> None:
        """Stop accepting, drop open connections, close the store."""
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        if self._listener is not None:
            # shutdown() before close(): on Linux, close() alone does not
            # wake a thread blocked in accept() — it would sit there until
            # the next (never-coming) connection.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self.slow_log is not None:
            self.slow_log.close()
        if self.extra_store is not None:
            self.extra_store.close()
        self.store.close()

    def __enter__(self) -> "NGramStoreServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def cache_summary(self) -> Dict[str, Any]:
        """Block-cache counters, JSON-ready (the ``server_stats`` shape).

        The shared cache object outlives a closed store, so the CLI can
        still build its shutdown report from this.
        """
        return build_cache_summary(self.store, self.cache)

    # ------------------------------------------------------------- serving
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            # A free handler slot is a precondition for accepting: the
            # kernel backlog, not a thread pile-up, absorbs bursts beyond
            # max_clients.
            self._slots.acquire()
            try:
                connection, _ = self._listener.accept()
            except OSError:
                self._slots.release()
                if self._shutdown.is_set():
                    return
                # Transient accept failures (ECONNABORTED from a client
                # resetting in the backlog, EMFILE under fd pressure) must
                # not permanently stop a live server; back off and retry.
                time.sleep(0.05)
                continue
            if self._shutdown.is_set():
                connection.close()
                self._slots.release()
                return
            self.metrics.record_connection()
            with self._connections_lock:
                self._connections.add(connection)
            handler = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="ngramstore-client",
                daemon=True,
            )
            try:
                handler.start()
            except RuntimeError:
                # Thread exhaustion: drop this connection, keep serving.
                with self._connections_lock:
                    self._connections.discard(connection)
                connection.close()
                self._slots.release()

    def _serve_connection(self, connection: socket.socket) -> None:
        try:
            reader = connection.makefile("rb")
            with reader:
                first_line = True
                while not self._shutdown.is_set():
                    line = reader.readline(MAX_REQUEST_BYTES + 1)
                    if not line:
                        return
                    if (
                        first_line
                        and self.config.binary
                        and line.rstrip(b"\r\n") == WIRE_MAGIC
                    ):
                        # Binary-capable client: answer the hello frame and
                        # switch the whole connection to binary framing.
                        self._serve_binary(connection, reader)
                        return
                    first_line = False
                    if len(line) > MAX_REQUEST_BYTES:
                        self._respond(
                            connection,
                            {"ok": False, "error": "request exceeds 1 MiB"},
                        )
                        return
                    parse_watch = Stopwatch()
                    try:
                        request: Any = json.loads(line)
                    except ValueError as error:
                        request = StoreError(f"request is not valid JSON: {error}")
                    parse_seconds = parse_watch.elapsed()
                    if not self._respond(
                        connection,
                        self._execute(request, parse_seconds=parse_seconds),
                    ):
                        return
        except OSError:
            pass  # client went away (or shutdown closed the socket underneath)
        finally:
            with self._connections_lock:
                self._connections.discard(connection)
            try:
                connection.close()
            except OSError:
                pass
            self._slots.release()

    def _serve_binary(self, connection: socket.socket, reader: Any) -> None:
        """Serve one negotiated binary connection until it closes.

        Framing errors (truncated, oversized or undecodable frames) end
        the connection after one in-stream error message — past the frame
        boundary nothing can be trusted, exactly like an unterminated JSON
        line.  Requests that *decode* but are invalid are answered
        in-stream and the connection lives on.
        """
        connection.sendall(encode_hello())
        while not self._shutdown.is_set():
            try:
                request = read_message(reader, MAX_REQUEST_BYTES)
            except SerializationError as error:
                self._respond_binary(connection, {"ok": False, "error": f"{error}"})
                return
            if request is None:
                return
            if not self._respond_binary(connection, self._execute(request)):
                return

    def _execute(self, request: Any, parse_seconds: float = 0.0) -> Dict[str, Any]:
        """One decoded request -> one response dict, with metrics recorded.

        Shared by both framings — the protocols differ only in how bytes
        become the request object and how the response object becomes
        bytes.  Pass an exception as ``request`` to report a decode
        failure through the same error/metrics path.

        ``parse_seconds`` is time the transport already spent decoding the
        request bytes; it counts toward the request's latency and shows up
        as the ``parse`` stage.
        """
        watch = Stopwatch()
        operation = "invalid"
        trace = TraceContext.from_request(request)
        if parse_seconds:
            trace.add_stage("parse", parse_seconds)
        io_before: Optional[Dict[str, float]] = None
        try:
            if isinstance(request, Exception):
                raise request
            if not isinstance(request, dict):
                raise StoreError("request must be a JSON object")
            operation = str(request.get("op"))
            io_before = collect_io_counters(self.store, operation)
            response = self._handle(operation, request, trace)
            response["ok"] = True
        except (StoreError, KeyError, TypeError, ValueError) as error:
            response = {"ok": False, "error": f"{error}"}
        ok = response.get("ok", False)
        elapsed = watch.elapsed() + parse_seconds
        # Clamp to the known set: client-chosen strings must not
        # grow the metrics dict without bound on a long-lived server.
        bucket = operation if operation in OPERATIONS else "invalid"
        io_after = (
            collect_io_counters(self.store, operation) if io_before is not None else None
        )
        finish_request_observation(
            self.metrics,
            self.slow_log,
            trace,
            bucket,
            request,
            elapsed,
            ok,
            io_before,
            io_after,
        )
        return response

    def _respond(self, connection: socket.socket, response: Dict[str, Any]) -> bool:
        try:
            payload = json.dumps(response, separators=(",", ":"))
        except (TypeError, ValueError) as error:
            # Non-JSON-serialisable store values (arbitrary build_store
            # payloads) are a per-request failure, not a dead connection.
            payload = json.dumps(
                {"ok": False, "error": f"value is not JSON-serialisable: {error}"}
            )
        try:
            connection.sendall(payload.encode("utf-8") + b"\n")
            return True
        except OSError:
            return False

    def _respond_binary(self, connection: socket.socket, response: Dict[str, Any]) -> bool:
        try:
            message = encode_message(response)
        except SerializationError as error:
            # Mirror of the JSON path's non-serialisable-value fallback.
            message = encode_message(
                {"ok": False, "error": f"value is not wire-serialisable: {error}"}
            )
        try:
            connection.sendall(message)
            return True
        except OSError:
            return False

    # ------------------------------------------------------------ handlers
    def _handle(
        self,
        operation: str,
        request: Dict[str, Any],
        trace: Optional[TraceContext] = None,
    ) -> Dict[str, Any]:
        """One request dict -> one response dict (without the ``ok`` field).

        ``server_stats`` and ``metrics`` are transport state (metrics,
        cache, connections) and are answered here; every store query goes
        through the shared :class:`QueryEngine`, after
        :func:`normalize_request` maps legacy field spellings onto the
        unified schema.
        """
        if operation == "server_stats":
            snapshot = self.metrics.snapshot()
            snapshot["cache"] = self.cache_summary()
            with self._connections_lock:
                snapshot["active_connections"] = len(self._connections)
            return snapshot
        if operation == "metrics":
            return {"text": render_server_metrics(self.metrics, self.store)}
        request, deprecated = normalize_request(request)
        response = self.engine.handle(request, trace=trace)
        if deprecated:
            response["deprecated"] = deprecated
        return response


class StoreClient(RemoteStore):
    """Socket client for :class:`NGramStoreServer`'s newline-JSON protocol.

    A :class:`~repro.ngramstore.api.RemoteStore`: the full ``StoreAPI``
    surface over one TCP connection, returning the canonical records
    (tuple-compatible with the pre-redesign plain tuples).  One instance
    owns one connection and is not itself thread-safe; concurrent callers
    each open their own (the server is built for many connections).

    Connection handling is resilient by default because every operation
    is an idempotent read: the initial connect retries ``max_retries``
    times with exponential ``backoff`` (a server still binding its socket
    answers ``ECONNREFUSED`` for a moment), and a dropped connection
    mid-stream (server restart, idle reset) triggers a bounded
    reconnect-and-resend instead of failing the first caller.  A dead
    endpoint surfaces as :class:`StoreConnectionError`, which replica
    pools treat as "fail over", unlike an application
    :class:`StoreError` the server answered.

    ``timeout=`` is the deprecated pre-redesign knob: it set one budget
    for both connecting and reading.  Pass ``connect_timeout`` /
    ``read_timeout`` instead.

    ``protocol`` selects the wire framing: ``"auto"`` (the default) opens
    with the binary magic and falls back to newline-JSON when the server
    turns out not to speak it; ``"binary"`` requires the binary protocol
    (a JSON-only server is an error); ``"json"`` skips negotiation and
    speaks newline-JSON, byte-compatible with pre-binary clients.  The
    negotiated mode is visible as ``negotiated_protocol``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        *,
        connect_timeout: float = 5.0,
        read_timeout: float = 30.0,
        max_retries: int = 2,
        backoff: float = 0.05,
        protocol: str = "auto",
    ) -> None:
        if timeout is not None:
            warnings.warn(
                "StoreClient(timeout=...) is deprecated; use connect_timeout= "
                "and read_timeout=",
                DeprecationWarning,
                stacklevel=2,
            )
            connect_timeout = timeout
            read_timeout = timeout
        if max_retries < 0:
            raise StoreError(f"max_retries must be >= 0, got {max_retries}")
        if protocol not in ("auto", "binary", "json"):
            raise StoreError(
                f"protocol must be 'auto', 'binary' or 'json', got {protocol!r}"
            )
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.read_timeout = read_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.protocol = protocol
        self.negotiated_protocol: Optional[str] = None
        self.last_trace_id: Optional[str] = None
        self._socket: Optional[socket.socket] = None
        self._reader: Optional[Any] = None
        self._closed = False
        self._connect()

    # ------------------------------------------------------------ plumbing
    def _drop(self) -> None:
        """Forget the current connection (it is broken or being replaced)."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError:
                pass
            self._socket = None

    def _connect(self) -> None:
        """Establish the connection, retrying refused/reset attempts.

        ``ECONNREFUSED`` right after a server (re)start is a timing
        artifact, not a verdict — a bounded backoff loop absorbs it; a
        server that is truly gone becomes :class:`StoreConnectionError`
        after the last attempt.
        """
        self._drop()
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            try:
                self._socket = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                self._socket.settimeout(self.read_timeout)
                self._reader = self._socket.makefile("rb")
                if self.protocol == "json":
                    self.negotiated_protocol = "json"
                else:
                    self._negotiate()
                return
            except OSError as error:
                self._drop()
                if attempt + 1 >= attempts:
                    raise StoreConnectionError(
                        f"cannot connect to store server {self.host}:{self.port} "
                        f"after {attempts} attempts: {error}"
                    ) from error
                time.sleep(self.backoff * (2 ** attempt))

    def _negotiate(self) -> None:
        """Offer the binary protocol; settle on what the server speaks.

        The magic line is newline-terminated, so a legacy JSON server
        parses it as one malformed request and answers an error line —
        which necessarily starts with ``{``, a byte no binary hello frame
        starts with (see :func:`repro.ngramstore.wire.encode_hello`).
        Peeking that one byte tells the two servers apart without ever
        desynchronising either stream.
        """
        self._socket.sendall(WIRE_MAGIC + b"\n")
        peeked = self._reader.peek(1)
        if not peeked:
            raise ConnectionResetError("server closed during protocol negotiation")
        if peeked[:1] == b"{":
            # Legacy JSON server: it answered the magic with an error
            # line.  Consume it and fall back (or fail, if binary was
            # explicitly required).
            self._reader.readline()
            if self.protocol == "binary":
                raise StoreConnectionError(
                    f"store server {self.host}:{self.port} does not speak the "
                    "binary protocol (protocol='binary' was required)"
                )
            self.negotiated_protocol = "json"
            return
        hello = read_message(self._reader, MAX_REQUEST_BYTES)
        if not isinstance(hello, dict) or hello.get("protocol") != "binary":
            raise StoreConnectionError(
                f"store server {self.host}:{self.port} sent a malformed "
                f"binary hello: {hello!r}"
            )
        self.negotiated_protocol = "binary"

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._closed:
            raise StoreError("client is closed")
        # Every request leaves this client with a trace ID (an existing one
        # is respected — a router propagating a caller's ID wins), and the
        # ID is kept so the caller can join client-side latency to the
        # server's slow-query log line for the same request.
        self.last_trace_id = attach_trace(request)
        attempts = self.max_retries + 1
        response: Any = None
        for attempt in range(attempts):
            try:
                if self._socket is None:
                    self._connect()
                response = self._exchange(request)
                break
            except (OSError, SerializationError) as error:
                # Reads are idempotent, so resending after a reconnect is
                # safe; a connection that stays dead through the retry
                # budget is a dead endpoint.  A framing error
                # (SerializationError) means the stream cannot be trusted
                # past this point — same remedy, reconnect.
                self._drop()
                if attempt + 1 >= attempts:
                    raise StoreConnectionError(
                        f"lost connection to store server {self.host}:{self.port}: "
                        f"{error}"
                    ) from error
                time.sleep(self.backoff * (2 ** attempt))
        if not response.get("ok"):
            raise StoreError(f"server error: {response.get('error', 'unknown')}")
        return response

    def _exchange(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and read its response on the live connection."""
        if self.negotiated_protocol == "binary":
            self._socket.sendall(encode_message(request))
            response = read_message(self._reader)
            if response is None:
                raise ConnectionResetError("server closed the connection")
            if not isinstance(response, dict):
                raise SerializationError(
                    f"binary response is {type(response).__name__}, expected dict"
                )
            return response
        payload = json.dumps(request, separators=(",", ":")).encode("utf-8") + b"\n"
        self._socket.sendall(payload)
        line = self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        return json.loads(line)

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._closed = True
        self._drop()

    def __enter__(self) -> "StoreClient":
        return self
