"""Distributed serving topologies over the unified :class:`StoreAPI`.

The batch job's output is immutable and globally range-partitioned —
exactly the artifact distributed read-only serving wants.  Because every
replica of a store directory is byte-identical, replicas are trivially
consistent; because the manifest records the partition boundary keys,
those boundaries are natural shard keys.  This module turns both facts
into topologies, each one itself a :class:`StoreAPI`:

* :class:`ShardView` — the *server-side* half of range sharding: wraps an
  open :class:`~repro.ngramstore.reader.NGramStore` and serves only the
  slice of its partitions one shard owns, so N servers over the same
  store directory cover it disjointly.
* :class:`ReplicaPool` — the *client-side* half of replication: fans
  requests round-robin over N identical servers and fails over on
  connection errors, so read throughput scales with the replica count.
* :class:`ShardRouter` — the *client-side* half of sharding: discovers
  each shard's key range from its ``stats()``, routes ``get``/``prefix``
  to the owning shard, and merges ``top_k`` across shards with the same
  :class:`~repro.ngramstore.table.TopKAccumulator` the local store uses.

Because every topology implements the same contract, they compose: a
``ShardRouter`` over ``ReplicaPool`` entries is a replicated, sharded
deployment with no new code.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from itertools import islice
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import StoreConnectionError, StoreError
from repro.ngramstore.api import (
    DEFAULT_COMPLETE_K,
    Completion,
    NGramRecord,
    Record,
    StoreAPI,
    validate_complete_k,
)
from repro.ngramstore.reader import NGramStore
from repro.ngramstore.table import (
    TopKAccumulator,
    _frequency_type_error,
    prefix_records,
    validate_top_k,
)
from repro.util.metrics import MetricsRegistry
from repro.util.timer import Stopwatch


def shard_partition_range(num_partitions: int, shard_index: int, num_shards: int) -> Tuple[int, int]:
    """The contiguous partition slice ``[first, last)`` a shard owns.

    The classic balanced split: shard ``i`` of ``N`` owns partitions
    ``[i*P//N, (i+1)*P//N)``.  Every partition is owned by exactly one
    shard; when ``N > P`` the surplus shards own an empty slice (and serve
    nothing, which the router handles).
    """
    if num_shards < 1:
        raise StoreError(f"num_shards must be >= 1, got {num_shards}")
    if not 0 <= shard_index < num_shards:
        raise StoreError(
            f"shard_index must be in [0, {num_shards}), got {shard_index}"
        )
    first = shard_index * num_partitions // num_shards
    last = (shard_index + 1) * num_partitions // num_shards
    return first, last


class ShardView(StoreAPI):
    """One shard's slice of a store: a ``StoreAPI`` over owned partitions.

    Wraps an open :class:`NGramStore` and restricts every query to the
    partitions ``[first, last)`` of :func:`shard_partition_range`.  The
    owned key range follows from the manifest boundaries: partition ``a``
    starts at ``boundaries[a-1]`` (unbounded below for ``a == 0``) and
    partition ``b-1`` ends before ``boundaries[b-1]`` (unbounded above
    when the slice reaches the last partition).  Point lookups outside
    the range miss without touching disk; scans are clamped to the range;
    frequency top-k runs the block-skipping accumulator over the owned
    partitions only.  Vocabulary operations delegate to the full store —
    the dictionary is store-global, not per-shard.
    """

    def __init__(self, store: NGramStore, shard_index: int, num_shards: int) -> None:
        self.store = store
        self.shard_index = shard_index
        self.num_shards = num_shards
        self.first_partition, self.last_partition = shard_partition_range(
            store.num_partitions, shard_index, num_shards
        )
        boundaries = store.boundaries
        # Lower bound (inclusive): the boundary that starts our first
        # partition; upper bound (exclusive): the boundary that starts the
        # partition after our last.  None means unbounded on that side.
        self.lower: Optional[Tuple] = (
            boundaries[self.first_partition - 1] if self.first_partition > 0 else None
        )
        self.upper: Optional[Tuple] = (
            boundaries[self.last_partition - 1]
            if self.last_partition < store.num_partitions
            else None
        )

    # ----------------------------------------------------------- properties
    @property
    def is_empty(self) -> bool:
        """True when this shard owns no partitions (more shards than partitions)."""
        return self.first_partition >= self.last_partition

    @property
    def num_partitions(self) -> int:
        """Owned partitions only (what this shard actually serves)."""
        return self.last_partition - self.first_partition

    @property
    def num_records(self) -> int:
        """Records in the owned partitions only."""
        partitions = self.store.manifest["partitions"]
        return sum(
            partitions[index]["num_records"]
            for index in range(self.first_partition, self.last_partition)
        )

    @property
    def cache(self) -> Any:
        return self.store.cache

    @property
    def manifest(self) -> Dict[str, Any]:
        return self.store.manifest

    @property
    def vocabulary(self) -> Any:
        return self.store.vocabulary

    def cache_stats(self) -> Any:
        return self.store.cache_stats()

    def io_stats(self) -> Dict[str, Any]:
        """The wrapped store's I/O counters (reads are store-wide, not per-shard)."""
        return self.store.io_stats()

    def _in_range(self, key: Tuple) -> bool:
        if self.is_empty:
            return False
        if self.lower is not None and key < self.lower:
            return False
        if self.upper is not None and not key < self.upper:
            return False
        return True

    # ------------------------------------------------------------- queries
    def get(self, ngram: Any, default: Any = None) -> Any:
        key = tuple(ngram)
        if not self._in_range(key):
            return default
        return self.store.get(key, default)

    def scan(self, start: Any = None, stop: Any = None) -> Iterator[Record]:
        """The store's scan clamped to the shard's key range."""
        if self.is_empty:
            return iter(())
        start_key = None if start is None else tuple(start)
        stop_key = None if stop is None else tuple(stop)
        if self.lower is not None and (start_key is None or start_key < self.lower):
            start_key = self.lower
        if self.upper is not None and (stop_key is None or self.upper < stop_key):
            stop_key = self.upper
        return self.store.scan(start=start_key, stop=stop_key)

    def prefix(self, tokens: Any, limit: Optional[int] = None) -> Iterator[Record]:
        """Owned records starting with ``tokens``, in key order (lazy)."""
        records = prefix_records(self.scan, tuple(tokens))
        if limit is not None:
            if not isinstance(limit, int) or limit < 0:
                raise StoreError(
                    f"prefix limit must be a non-negative integer, got {limit!r}"
                )
            records = islice(records, limit)
        return (NGramRecord(key, value) for key, value in records)

    def top_k(self, k: int, order: str = "frequency") -> List[Record]:
        """The ``k`` best records among the shard's own partitions."""
        validate_top_k(k, order)
        if order == "key":
            return [NGramRecord(key, value) for key, value in islice(self.scan(), k)]
        accumulator = TopKAccumulator(k)
        try:
            self.store.top_k_into(
                accumulator, self.first_partition, self.last_partition
            )
            return [NGramRecord(key, value) for key, value in accumulator.results()]
        except TypeError as exc:
            raise _frequency_type_error(exc) from exc

    def stats(self) -> Dict[str, Any]:
        """The store's stats plus this shard's range descriptor.

        ``num_records`` counts the *owned* partitions only, so a routed
        deployment's per-shard stats sum to the store total.  The
        ``shard`` descriptor is what :class:`ShardRouter` uses to build
        its routing table, so it carries the key bounds explicitly.
        """
        stats = self.store.stats()
        stats["num_partitions"] = self.num_partitions
        stats["num_records"] = self.num_records
        stats["shard"] = {
            "index": self.shard_index,
            "num_shards": self.num_shards,
            "first_partition": self.first_partition,
            "last_partition": self.last_partition,
            "lower": None if self.lower is None else list(self.lower),
            "upper": None if self.upper is None else list(self.upper),
            "empty": self.is_empty,
        }
        return stats

    # ------------------------------------------------------ vocabulary ops
    def translate_terms(self, items: Sequence[Sequence[str]]) -> List[Optional[Tuple]]:
        return self.store.translate_terms(items)

    def render_ngrams(self, ngrams: Sequence[Tuple]) -> List[Tuple[str, ...]]:
        return self.store.render_ngrams(ngrams)

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        self.store.close()


class ReplicaPool(StoreAPI):
    """Round-robin over N clients serving *identical* stores, with failover.

    Any :class:`StoreAPI` clients work (socket, HTTP, even nested
    routers).  Each call goes to the next replica in rotation; when a
    replica answers with a connection-level failure
    (:class:`StoreConnectionError` or a raw ``OSError``), the pool moves
    on to the next one — safe because every operation is an idempotent
    read and every replica serves the same immutable store.  Application
    errors (a :class:`StoreError` the server answered) propagate
    immediately: every replica would answer them identically, so retrying
    elsewhere only hides the caller's bug.

    A replica that fails is *quarantined*: benched for
    ``quarantine_base * 2**(consecutive_failures - 1)`` seconds (capped
    at ``quarantine_cap``), so a down server stops costing every rotation
    a connect attempt and is re-probed at exponentially growing
    intervals.  When every replica is benched the pool falls back to the
    full rotation — serving through a possibly-recovered replica beats
    failing fast while any hope remains.  A success clears the replica's
    failure count.  ``clock`` is injectable for tests.

    The rotation cursor and quarantine state are lock-guarded, but true
    thread-safety also requires thread-safe member clients (socket
    clients are not); the intended concurrent pattern is one pool of
    per-thread clients per thread, mirroring plain ``StoreClient`` usage.
    """

    def __init__(
        self,
        clients: Sequence[StoreAPI],
        quarantine_base: float = 0.25,
        quarantine_cap: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not clients:
            raise StoreError("ReplicaPool needs at least one client")
        if quarantine_base < 0 or quarantine_cap < 0:
            raise StoreError("quarantine_base and quarantine_cap must be >= 0")
        self.clients = list(clients)
        self.quarantine_base = quarantine_base
        self.quarantine_cap = quarantine_cap
        self._clock = clock
        self._failures = [0] * len(self.clients)
        self._benched_until = [0.0] * len(self.clients)
        self._cursor = 0
        self._lock = threading.Lock()
        # Quarantine events are operational signal (a replica flapping in
        # and out of the bench is a deployment problem no single request
        # surfaces), so they land on a metrics registry — a private one
        # unless the deployment wires a shared one in.
        self.metrics_registry = registry if registry is not None else MetricsRegistry()
        self._quarantines = self.metrics_registry.counter(
            "ngramstore_replica_quarantines_total",
            "Times a replica was benched after a connection failure",
            labels=("replica",),
        )
        self._recoveries = self.metrics_registry.counter(
            "ngramstore_replica_recoveries_total",
            "Times a benched replica answered again and was unbenched",
            labels=("replica",),
        )
        self._exhausted = self.metrics_registry.counter(
            "ngramstore_replica_pool_exhausted_total",
            "Requests that failed on every replica",
        )
        self.metrics_registry.gauge(
            "ngramstore_replica_benched", "Replicas currently quarantined"
        ).set_callback(lambda: float(len(self.benched_replicas())))

    def _rotation(self) -> List[int]:
        """Replica indexes in call order for one request.

        Benched replicas are skipped — unless *every* replica is benched,
        in which case the full rotation is the only option left.
        """
        with self._lock:
            start = self._cursor
            self._cursor = (self._cursor + 1) % len(self.clients)
            now = self._clock()
            order = [
                (start + offset) % len(self.clients)
                for offset in range(len(self.clients))
            ]
            healthy = [index for index in order if self._benched_until[index] <= now]
        return healthy if healthy else order

    def _bench(self, index: int) -> None:
        with self._lock:
            self._failures[index] += 1
            delay = min(
                self.quarantine_cap,
                self.quarantine_base * (2 ** (self._failures[index] - 1)),
            )
            self._benched_until[index] = self._clock() + delay
        self._quarantines.inc(replica=index)

    def _mark_healthy(self, index: int) -> None:
        with self._lock:
            recovered = self._failures[index] > 0
            self._failures[index] = 0
            self._benched_until[index] = 0.0
        if recovered:
            self._recoveries.inc(replica=index)

    def benched_replicas(self) -> List[int]:
        """Indexes currently quarantined (for monitoring and tests)."""
        with self._lock:
            now = self._clock()
            return [
                index
                for index in range(len(self.clients))
                if self._benched_until[index] > now
            ]

    def _invoke(self, method: str, *args: Any, **kwargs: Any) -> Any:
        errors: List[str] = []
        for index in self._rotation():
            try:
                result = getattr(self.clients[index], method)(*args, **kwargs)
            except (StoreConnectionError, ConnectionError, OSError) as error:
                self._bench(index)
                errors.append(f"{error}")
            else:
                self._mark_healthy(index)
                return result
        self._exhausted.inc()
        raise StoreConnectionError(
            f"all {len(self.clients)} replicas failed for {method}: "
            + "; ".join(errors)
        )

    # ------------------------------------------------------------- queries
    def get(self, ngram: Any, default: Any = None) -> Any:
        return self._invoke("get", ngram, default)

    def multi_get(self, ngrams: Sequence[Any], default: Any = None) -> List[Any]:
        return self._invoke("multi_get", ngrams, default)

    def prefix(self, tokens: Any, limit: Optional[int] = None) -> List[Record]:
        return list(self._invoke("prefix", tokens, limit=limit))

    def multi_prefix(
        self, prefixes: Sequence[Any], limit: Optional[int] = None
    ) -> List[List[Record]]:
        return [
            list(records)
            for records in self._invoke("multi_prefix", prefixes, limit=limit)
        ]

    def top_k(self, k: int, order: str = "frequency") -> List[Record]:
        return self._invoke("top_k", k, order)

    def complete(self, ngram: Any, k: int = DEFAULT_COMPLETE_K) -> List[Completion]:
        return self._invoke("complete", ngram, k)

    def complete_terms(
        self, terms: Sequence[str], k: int = DEFAULT_COMPLETE_K
    ) -> List[Completion]:
        return self._invoke("complete_terms", terms, k)

    def compare(self, ngram: Any) -> Dict[str, Any]:
        return self._invoke("compare", ngram)

    def compare_terms(self, terms: Sequence[str]) -> Dict[str, Any]:
        return self._invoke("compare_terms", terms)

    def stats(self) -> Dict[str, Any]:
        return self._invoke("stats")

    def ping(self) -> bool:
        return bool(self._invoke("ping"))

    def translate_terms(self, items: Sequence[Sequence[str]]) -> List[Optional[Tuple]]:
        return self._invoke("translate_terms", items)

    def render_ngrams(self, ngrams: Sequence[Tuple]) -> List[Tuple[str, ...]]:
        return self._invoke("render_ngrams", ngrams)

    def get_terms(self, terms: Sequence[str], default: Any = None) -> Any:
        return self._invoke("get_terms", terms, default)

    def multi_get_terms(
        self, items: Sequence[Sequence[str]], default: Any = None
    ) -> List[Any]:
        return self._invoke("multi_get_terms", items, default)

    def prefix_terms(
        self, terms: Sequence[str], limit: Optional[int] = None
    ) -> List[Record]:
        return list(self._invoke("prefix_terms", terms, limit=limit))

    def top_k_terms(self, k: int, order: str = "frequency") -> List[Record]:
        return self._invoke("top_k_terms", k, order)

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        for client in self.clients:
            try:
                client.close()
            except (StoreError, OSError):
                pass


class _ShardEntry:
    """One routed shard: its client and the key range it owns."""

    __slots__ = ("client", "index", "lower", "upper", "empty")

    def __init__(self, client: StoreAPI, descriptor: Dict[str, Any]) -> None:
        self.client = client
        self.index = descriptor["index"]
        self.lower = None if descriptor["lower"] is None else tuple(descriptor["lower"])
        self.upper = None if descriptor["upper"] is None else tuple(descriptor["upper"])
        self.empty = bool(descriptor.get("empty"))

    def owns(self, key: Tuple) -> bool:
        if self.empty:
            return False
        if self.lower is not None and key < self.lower:
            return False
        if self.upper is not None and not key < self.upper:
            return False
        return True

    def may_contain_prefix(self, prefix: Tuple) -> bool:
        """Whether any key starting with ``prefix`` can live in this range.

        Keys with prefix ``p`` form the interval ``[p, p+inf)`` in tuple
        order, so a shard is irrelevant when its whole range ends at or
        before ``p`` (``upper <= p``) or starts above every ``p``-prefixed
        key (``lower[:len(p)] > p``).
        """
        if self.empty:
            return False
        if self.upper is not None and not prefix < self.upper:
            return False
        if self.lower is not None and self.lower[: len(prefix)] > prefix:
            return False
        return True


class ShardRouter(StoreAPI):
    """Routes queries across range-sharded servers; itself a ``StoreAPI``.

    Built from one client per shard server (each serving a
    :class:`ShardView`); the constructor reads every client's ``stats()``
    shard descriptor, orders the shards by index, and validates that
    together they cover the whole key space with no gaps — a mis-deployed
    topology fails at construction, not at the first unlucky query.

    Routing: ``get`` goes to the one owning shard; ``multi_get`` groups
    keys per shard into one batched call each; ``prefix`` fans out to the
    shards whose ranges can intersect the prefix interval, in shard
    order, so concatenation preserves global key order; frequency
    ``top_k`` asks every shard for its local top-k and merges through the
    same :class:`TopKAccumulator` the local store uses — each shard's k
    candidates are a superset of its contribution to the global k, so the
    merge is exact.

    Multi-shard operations (``prefix``, ``top_k``, ``multi_get``) query
    the relevant shards *in parallel* from a lazily-created thread pool,
    so wall-clock latency is the slowest shard's, not the sum.  This is
    safe with non-thread-safe member clients because each shard's client
    is only ever driven by one worker at a time; the results are merged
    in deterministic shard order, so answers are identical to the
    sequential ones.
    """

    def __init__(
        self,
        clients: Sequence[StoreAPI],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not clients:
            raise StoreError("ShardRouter needs at least one shard client")
        entries = []
        shard_counts = set()
        for client in clients:
            stats = client.stats()
            descriptor = stats.get("shard")
            if not isinstance(descriptor, dict):
                raise StoreError(
                    "shard server did not report a shard descriptor; serve the "
                    "store with --num-shards/--shard-index (a plain server is "
                    "not a shard)"
                )
            entries.append(_ShardEntry(client, descriptor))
            shard_counts.add(descriptor["num_shards"])
        entries.sort(key=lambda entry: entry.index)
        declared = {entry.index for entry in entries}
        num_shards = shard_counts
        if len(num_shards) != 1:
            raise StoreError(
                f"shard servers disagree on num_shards: {sorted(num_shards)}"
            )
        expected = num_shards.pop()
        if declared != set(range(expected)):
            missing = sorted(set(range(expected)) - declared)
            raise StoreError(
                f"incomplete shard topology: {len(entries)} clients for "
                f"{expected} shards (missing indexes {missing})"
            )
        # Non-empty shards must tile the key space: each one's upper bound
        # is the next one's lower bound.
        active = [entry for entry in entries if not entry.empty]
        for left, right in zip(active, active[1:]):
            if left.upper != right.lower:
                raise StoreError(
                    f"shard ranges do not tile: shard {left.index} ends at "
                    f"{left.upper} but shard {right.index} starts at {right.lower}"
                )
        if active:
            if active[0].lower is not None or active[-1].upper is not None:
                raise StoreError(
                    "shard ranges do not cover the key space: first shard must "
                    "be unbounded below and last unbounded above"
                )
        self.shards = entries
        self._active = active
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self.metrics_registry = registry if registry is not None else MetricsRegistry()
        self._router_requests = self.metrics_registry.counter(
            "ngramstore_router_requests_total",
            "Requests routed across shards, by operation",
            labels=("op",),
        )
        self._fanout_seconds = self.metrics_registry.histogram(
            "ngramstore_router_fanout_seconds",
            "Wallclock of one routed operation's shard fan-out, by operation",
            labels=("op",),
        )
        self._fanout_shards = self.metrics_registry.histogram(
            "ngramstore_router_fanout_shards",
            "Shards queried per routed operation, by operation",
            labels=("op",),
            buckets=tuple(float(2 ** power) for power in range(11)),
        )
        self.metrics_registry.gauge(
            "ngramstore_router_shards", "Shards in the routing table"
        ).set(float(len(entries)))

    # ------------------------------------------------------------ routing
    def _owner(self, key: Tuple) -> Optional[_ShardEntry]:
        for entry in self._active:
            if entry.owns(key):
                return entry
        return None

    def _any_client(self) -> StoreAPI:
        """A client for store-global operations (vocabulary, metadata)."""
        return self.shards[0].client

    def _fan_out(
        self, items: List[Any], call: Callable[[Any], Any], op: str = "fan_out"
    ) -> List[Any]:
        """``[call(item) for item in items]``, but concurrently.

        Results come back in ``items`` order, so merges downstream see the
        same deterministic sequence a sequential loop would produce.  The
        pool is created on first multi-shard query (sized to the shard
        count — each worker drives a different shard's client) and lives
        until :meth:`close`.  Each fan-out's wallclock and width land on
        the router's metrics registry under ``op``.
        """
        watch = Stopwatch()
        try:
            if len(items) <= 1:
                return [call(item) for item in items]
            with self._executor_lock:
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=len(self.shards), thread_name_prefix="shard-fanout"
                    )
                executor = self._executor
            return list(executor.map(call, items))
        finally:
            self._router_requests.inc(op=op)
            self._fanout_seconds.observe(watch.elapsed(), op=op)
            self._fanout_shards.observe(float(len(items)), op=op)

    # ------------------------------------------------------------- queries
    def get(self, ngram: Any, default: Any = None) -> Any:
        key = tuple(ngram)
        owner = self._owner(key)
        watch = Stopwatch()
        try:
            if owner is None:
                return default
            return owner.client.get(key, default)
        finally:
            self._router_requests.inc(op="get")
            self._fanout_seconds.observe(watch.elapsed(), op="get")
            self._fanout_shards.observe(0.0 if owner is None else 1.0, op="get")

    def multi_get(self, ngrams: Sequence[Any], default: Any = None) -> List[Any]:
        keys = [tuple(ngram) for ngram in ngrams]
        grouped: Dict[int, List[int]] = {}
        for position, key in enumerate(keys):
            owner = self._owner(key)
            if owner is not None:
                grouped.setdefault(owner.index, []).append(position)
        by_index = {entry.index: entry for entry in self.shards}
        results: List[Any] = [default] * len(keys)
        shard_batches = sorted(grouped.items())
        values_per_shard = self._fan_out(
            shard_batches,
            lambda batch: by_index[batch[0]].client.multi_get(
                [keys[position] for position in batch[1]], default
            ),
            op="multi_get",
        )
        for (_, positions), values in zip(shard_batches, values_per_shard):
            for position, value in zip(positions, values):
                results[position] = value
        return results

    def prefix(self, tokens: Any, limit: Optional[int] = None) -> List[Record]:
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise StoreError(
                f"prefix limit must be a non-negative integer, got {limit!r}"
            )
        prefix = tuple(tokens)
        # Every relevant shard is asked with the caller's full limit in
        # parallel: each shard's capped result is a superset of its
        # contribution to the first `limit` records of the in-order
        # concatenation, so truncating after the merge yields exactly what
        # the sequential remaining-limit loop produced.
        relevant = [
            entry for entry in self._active if entry.may_contain_prefix(prefix)
        ]
        per_shard = self._fan_out(
            relevant,
            lambda entry: list(entry.client.prefix(prefix, limit=limit)),
            op="prefix",
        )
        records: List[Record] = []
        for shard_records in per_shard:
            records.extend(shard_records)
            if limit is not None and len(records) >= limit:
                break
        return records if limit is None else records[:limit]

    def top_k(self, k: int, order: str = "frequency") -> List[Record]:
        validate_top_k(k, order)
        per_shard = self._fan_out(
            list(self._active), lambda entry: entry.client.top_k(k, order), op="top_k"
        )
        if order == "key":
            # Shards are in global key order; the first k of the in-order
            # concatenation are the global first k.
            records: List[Record] = []
            for shard_records in per_shard:
                records.extend(shard_records)
                if len(records) >= k:
                    break
            return records[:k]
        # Exact merge: each shard's local top-k is a superset of its
        # contribution to the global top-k, and the accumulator's total
        # order makes the result independent of offer order.
        accumulator = TopKAccumulator(k)
        for shard_records in per_shard:
            for key, value in shard_records:
                accumulator.offer(key, value)
        return [NGramRecord(key, value) for key, value in accumulator.results()]

    def complete(self, ngram: Any, k: int = DEFAULT_COMPLETE_K) -> List[Completion]:
        """Exact global completions merged from the prefix-relevant shards.

        Every key extending the prefix lives in exactly one shard, so the
        per-shard completion lists carry disjoint tokens and each is a
        superset of its shard's contribution to the global top-k; the
        concatenation re-ranked with the canonical ``(-value, token)``
        tie-break is therefore byte-identical to a single-store answer.
        """
        key = tuple(ngram)
        k = validate_complete_k(k)
        relevant = [
            entry for entry in self._active if entry.may_contain_prefix(key)
        ]
        per_shard = self._fan_out(
            relevant,
            lambda entry: entry.client.complete(key, k),
            op="complete",
        )
        candidates = [
            completion for shard_completions in per_shard
            for completion in shard_completions
        ]
        try:
            candidates.sort(key=lambda item: (-item[1], item[0]))
        except TypeError as exc:
            raise StoreError(
                f"completion values are not orderable across shards: {exc}"
            ) from exc
        return [Completion(token, value) for token, value in candidates[:k]]

    def compare(self, ngram: Any) -> Dict[str, Any]:
        """Point diff/intersect lookup routed to the key's owning shard.

        Shard servers mount the comparison store whole (it is not
        sharded), so the owner answers for both sides; a key no shard owns
        can exist in neither store and short-circuits to all-missing.
        """
        key = tuple(ngram)
        owner = self._owner(key)
        watch = Stopwatch()
        try:
            if owner is None:
                # Only possible when every shard is empty; the engine's
                # answer for a key absent from both stores.
                return {
                    "found_a": False,
                    "value_a": None,
                    "found_b": False,
                    "value_b": None,
                }
            return owner.client.compare(key)
        finally:
            self._router_requests.inc(op="compare")
            self._fanout_seconds.observe(watch.elapsed(), op="compare")
            self._fanout_shards.observe(0.0 if owner is None else 1.0, op="compare")

    def compare_terms(self, terms: Sequence[str]) -> Dict[str, Any]:
        (key,) = self._any_client().translate_terms([tuple(terms)])
        if key is None:
            # The engine's unknown-surface-term answer: found nowhere.
            return {
                "found_a": False,
                "value_a": None,
                "found_b": False,
                "value_b": None,
            }
        return self.compare(key)

    def stats(self) -> Dict[str, Any]:
        """Aggregated topology stats: store totals plus per-shard summary."""
        per_shard = [entry.client.stats() for entry in self.shards]
        first = per_shard[0]
        return {
            "store_dir": first["store_dir"],
            "num_records": sum(stats["num_records"] for stats in per_shard),
            "num_partitions": sum(stats["num_partitions"] for stats in per_shard),
            "codec": first["codec"],
            "has_vocabulary": first["has_vocabulary"],
            "metadata": first["metadata"],
            "shards": [stats["shard"] for stats in per_shard],
        }

    def ping(self) -> bool:
        return all(entry.client.ping() for entry in self.shards)

    # ------------------------------------------------------ vocabulary ops
    def translate_terms(self, items: Sequence[Sequence[str]]) -> List[Optional[Tuple]]:
        return self._any_client().translate_terms(items)

    def render_ngrams(self, ngrams: Sequence[Tuple]) -> List[Tuple[str, ...]]:
        return self._any_client().render_ngrams(ngrams)

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
        for entry in self.shards:
            try:
                entry.client.close()
            except (StoreError, OSError):
                pass
