"""Seeded workload replay against any :class:`StoreAPI` target.

The serving tier's latency claims are only as good as the workload that
produced them, so this harness pins the workload down: a seeded generator
builds a deterministic operation sequence per *mix* (the shapes production
traffic actually takes), a closed-loop worker pool replays it against any
``StoreAPI`` — a local store, one socket/HTTP client, a replica pool, a
shard router — and the per-mix latencies land in the same fixed-bucket
histograms the servers use (:mod:`repro.util.metrics`), so the reported
p50/p95/p99 are *histogram-derived* and therefore mergeable and directly
comparable with server-side ``/metrics`` series.

Mixes
-----
``hot_key``
    Single-key ``get`` with Zipf-skewed key popularity — the cache-friendly
    hot-head traffic that dominates real lookup services.
``prefix_heavy``
    ``prefix`` scans under 1–2-token prefixes — the block-decode-heavy
    shape (autocomplete, language-model context expansion).
``batch``
    ``multi_get`` of ``batch_size`` uniformly drawn keys — the batched
    client shape the binary wire protocol exists for.
``mixed``
    A blend of the above in fixed proportions (70% get / 20% prefix /
    10% batch) — the steady-state composite.

The report is schema-stable JSON (see :data:`REPORT_SCHEMA`) with per-mix
throughput and latency quantiles, plus the outcome of asserting the
caller's SLO targets — CI fails the build on a violation via the exit
code of ``repro loadgen``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import StoreError
from repro.util.metrics import Histogram
from repro.util.timer import Stopwatch

__all__ = [
    "MIXES",
    "REPORT_SCHEMA",
    "LoadgenConfig",
    "SLOTargets",
    "build_operations",
    "check_slos",
    "run_loadgen",
]

#: Report schema identifier — bump only on breaking shape changes.
REPORT_SCHEMA = "ngramstore-loadgen/v1"

#: Workload mixes in canonical order.
MIXES = ("hot_key", "prefix_heavy", "batch", "mixed")

#: An operation is ``(kind, payload)`` where kind names a StoreAPI method.
Operation = Tuple[str, Any]


@dataclass(frozen=True)
class LoadgenConfig:
    """One replay run: which mixes, how many requests, how generated.

    ``requests_per_mix`` is the closed-loop total per mix (split across
    ``concurrency`` workers); ``universe`` caps how many distinct keys the
    generator samples from the store, and ``zipf_s`` shapes the hot-key
    skew (higher = hotter head).
    """

    mixes: Tuple[str, ...] = MIXES
    requests_per_mix: int = 200
    concurrency: int = 4
    seed: int = 1
    batch_size: int = 8
    universe: int = 256
    zipf_s: float = 1.2
    prefix_limit: int = 50

    def __post_init__(self) -> None:
        unknown = [mix for mix in self.mixes if mix not in MIXES]
        if unknown:
            raise StoreError(
                f"unknown mix(es) {', '.join(unknown)}; choose from {', '.join(MIXES)}"
            )
        if not self.mixes:
            raise StoreError("at least one mix is required")
        if self.requests_per_mix <= 0:
            raise StoreError(
                f"requests_per_mix must be positive, got {self.requests_per_mix}"
            )
        if self.concurrency <= 0:
            raise StoreError(f"concurrency must be positive, got {self.concurrency}")
        if self.batch_size <= 0:
            raise StoreError(f"batch_size must be positive, got {self.batch_size}")
        if self.universe <= 0:
            raise StoreError(f"universe must be positive, got {self.universe}")


@dataclass(frozen=True)
class SLOTargets:
    """Latency/throughput floors the replay must meet; ``None`` = unchecked."""

    p50_ms: Optional[float] = None
    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    min_throughput: Optional[float] = None

    def any_set(self) -> bool:
        return any(
            value is not None
            for value in (self.p50_ms, self.p95_ms, self.p99_ms, self.min_throughput)
        )


# --------------------------------------------------------------- generation
def _zipf_weights(count: int, s: float) -> List[float]:
    return [1.0 / (rank**s) for rank in range(1, count + 1)]


def _key_universe(store: Any, size: int) -> List[Tuple[Any, ...]]:
    """The keys the workload draws from, hottest first.

    ``top_k`` by frequency is the natural popularity order: rank 1 of the
    Zipf draw lands on the store's genuinely most frequent n-gram, so the
    hot-key mix exercises the same blocks a real hot head would.
    """
    records = store.top_k(size, order="frequency")
    keys = [tuple(ngram) for ngram, _ in records]
    if not keys:
        raise StoreError("cannot generate a workload against an empty store")
    return keys


def build_operations(
    store: Any, config: LoadgenConfig
) -> Dict[str, List[Operation]]:
    """Deterministic per-mix operation sequences for one replay run.

    Generation is single-threaded from one seeded PRNG, so the workload —
    every key, prefix and batch, in order — is a pure function of
    ``(store contents, config)``.  Workers only race over *who executes
    which position*, never over what the workload is.
    """
    import random

    rng = random.Random(config.seed)
    keys = _key_universe(store, config.universe)
    zipf = _zipf_weights(len(keys), config.zipf_s)

    def hot_key() -> Operation:
        return ("get", rng.choices(keys, weights=zipf)[0])

    def prefix_heavy() -> Operation:
        key = rng.choice(keys)
        depth = min(len(key), rng.randint(1, 2))
        return ("prefix", (key[:depth], config.prefix_limit))

    def batch() -> Operation:
        return ("multi_get", [rng.choice(keys) for _ in range(config.batch_size)])

    def mixed() -> Operation:
        roll = rng.random()
        if roll < 0.70:
            return hot_key()
        if roll < 0.90:
            return prefix_heavy()
        return batch()

    generators: Dict[str, Callable[[], Operation]] = {
        "hot_key": hot_key,
        "prefix_heavy": prefix_heavy,
        "batch": batch,
        "mixed": mixed,
    }
    return {
        mix: [generators[mix]() for _ in range(config.requests_per_mix)]
        for mix in config.mixes
    }


# ------------------------------------------------------------------ replay
def _execute(store: Any, operation: Operation) -> None:
    kind, payload = operation
    if kind == "get":
        store.get(payload)
    elif kind == "prefix":
        tokens, limit = payload
        store.prefix(tokens, limit=limit)
    elif kind == "multi_get":
        store.multi_get(payload)
    else:  # pragma: no cover - build_operations only emits the above
        raise StoreError(f"unknown loadgen operation {kind!r}")


def _replay_mix(
    store: Any,
    operations: Sequence[Operation],
    concurrency: int,
    factory: Optional[Callable[[], Any]] = None,
) -> Tuple[Histogram, int, float]:
    """Closed-loop replay of one mix; ``(latencies, errors, wall_seconds)``.

    Closed-loop means each worker issues its next request only after the
    previous one returned — concurrency is the open-request ceiling, and
    measured throughput is what the target actually sustained rather than
    an offered rate.  When ``factory`` is given each worker builds (and
    closes) its own client — required for socket clients, which pin one
    connection each; without it all workers share ``store``.
    """
    latencies = Histogram(
        "loadgen_request_seconds", "Client-observed request latency", ()
    )
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    errors = [0] * concurrency

    def worker(slot: int) -> None:
        client = store if factory is None else factory()
        try:
            while True:
                with cursor_lock:
                    position = cursor["next"]
                    if position >= len(operations):
                        return
                    cursor["next"] = position + 1
                watch = Stopwatch()
                try:
                    _execute(client, operations[position])
                except StoreError:
                    errors[slot] += 1
                latencies.observe(watch.elapsed())
        finally:
            if factory is not None:
                client.close()

    wall = Stopwatch()
    threads = [
        threading.Thread(target=worker, args=(slot,), name=f"loadgen-{slot}")
        for slot in range(min(concurrency, len(operations)))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, sum(errors), wall.elapsed()


def run_loadgen(
    store: Any,
    config: Optional[LoadgenConfig] = None,
    *,
    factory: Optional[Callable[[], Any]] = None,
    target: str = "store",
) -> Dict[str, Any]:
    """Replay every configured mix against ``store``; returns the report.

    ``store`` generates the workload (it must answer ``top_k``) and, when
    ``factory`` is ``None``, serves it too — so it must then be safe to
    share across threads (a direct :class:`NGramStore` is; a socket
    :class:`StoreClient` is not — pass a ``factory`` building one client
    per worker for those).

    The report is JSON-ready and schema-stable: per-mix request counts,
    errors, closed-loop throughput, and histogram-derived latency
    quantiles in milliseconds (p50/p95/p99 interpolated within fixed
    buckets, clamped to the observed range — the same estimator the
    servers' ``/metrics`` consumers use).
    """
    config = config if config is not None else LoadgenConfig()
    workload = build_operations(store, config)
    mixes: Dict[str, Any] = {}
    for mix in config.mixes:
        latencies, errors, wall_seconds = _replay_mix(
            store, workload[mix], config.concurrency, factory
        )
        count = latencies.count()
        mixes[mix] = {
            "requests": count,
            "errors": errors,
            "wall_s": round(wall_seconds, 6),
            "throughput_rps": round(count / wall_seconds, 3) if wall_seconds else 0.0,
            "p50_ms": round(latencies.quantile(0.50) * 1e3, 3),
            "p95_ms": round(latencies.quantile(0.95) * 1e3, 3),
            "p99_ms": round(latencies.quantile(0.99) * 1e3, 3),
            "max_ms": round(latencies.max() * 1e3, 3),
        }
    return {
        "schema": REPORT_SCHEMA,
        "target": target,
        "config": {
            "mixes": list(config.mixes),
            "requests_per_mix": config.requests_per_mix,
            "concurrency": config.concurrency,
            "seed": config.seed,
            "batch_size": config.batch_size,
            "universe": config.universe,
            "zipf_s": config.zipf_s,
        },
        "mixes": mixes,
    }


# --------------------------------------------------------------------- SLOs
def check_slos(report: Dict[str, Any], slo: SLOTargets) -> List[str]:
    """Violations of ``slo`` in ``report``, as human-readable strings.

    Empty list = all targets met.  Every mix is held to the same targets —
    a mix that is allowed to be slower belongs in a separate run.
    """
    violations: List[str] = []
    for mix, stats in sorted(report.get("mixes", {}).items()):
        for quantile in ("p50_ms", "p95_ms", "p99_ms"):
            limit = getattr(slo, quantile)
            if limit is not None and stats[quantile] > limit:
                violations.append(
                    f"{mix}: {quantile.replace('_ms', '')} "
                    f"{stats[quantile]:.3f} ms > SLO {limit:.3f} ms"
                )
        if slo.min_throughput is not None and stats["throughput_rps"] < slo.min_throughput:
            violations.append(
                f"{mix}: throughput {stats['throughput_rps']:.1f} rps "
                f"< SLO {slo.min_throughput:.1f} rps"
            )
        if stats["errors"]:
            violations.append(f"{mix}: {stats['errors']} request(s) failed")
    return violations
