"""Compaction: k-way merge of several stores into one.

Each input store streams its records in global key order (the reader
chains its sorted, disjoint partitions), so merging stores is a single
``heapq.merge`` over ``k`` sorted streams — the LSM/SSTable compaction
idiom, and the MapReduce-free analogue of re-running the total-order-sort
job over the union.  Duplicate keys (the same n-gram counted in several
per-shard runs) are summed; partition boundaries are re-derived from the
inputs' block-index first keys (a records-proportional sample that costs
zero data-block reads, fed to the same quantile planning the build job
uses) so the output's partitioning reflects the merged key distribution,
not any single input's.

Nothing is materialised: boundary planning reads only the block indexes,
the merge itself is one streaming pass over the inputs, and each output
partition is written by one :class:`~repro.ngramstore.table.TableWriter`
as the merged stream crosses its boundaries.

**Exactness at any τ.**  Raw (τ=1) counts are additive across a document
partition, so τ=1 stores always merge exactly.  A τ>1 store merges exactly
when it carries its *residual* sidecar table (counts in ``[1, τ)``, written
by builds with ``StoreConfig(min_frequency=τ)``): the merge streams main
and residual together per input — recovering each shard's full count
table — sums duplicates, routes summed counts ``>= τ`` to the merged main
store and the rest to a merged residual, so a key locally under τ in every
shard still surfaces when its union count crosses τ.  Legacy τ>1 stores
*without* residuals dropped those counts at count time; merging k ≥ 2 of
them can only produce a lower bound on a union recount, so the merge
refuses unless ``allow_lower_bound`` is passed, which stamps the output's
metadata with ``counts: lower_bound`` so the claim travels with the store.
"""

from __future__ import annotations

import heapq
import os
import warnings
from bisect import bisect_right
from functools import reduce
from itertools import groupby
from operator import add, itemgetter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.config import StoreConfig
from repro.exceptions import StoreError
from repro.ngramstore.build import (
    DICTIONARY_FILENAME,
    PARTITION_PATTERN,
    RESIDUAL_DIRNAME,
    _check_splittable_count,
    clear_store_dir,
    plan_boundaries,
    write_dictionary,
    write_store_manifest,
)
from repro.ngramstore.reader import NGramStore
from repro.ngramstore.table import TableWriter

Record = Tuple[Any, Any]

_FIRST = itemgetter(0)

_SENTINEL = object()


def _merge_streams(streams: Iterable[Iterator[Record]]) -> Iterator[Record]:
    """K-way merge of sorted record streams, summing duplicate keys.

    Values of a duplicated key are combined with ``+`` left-to-right in
    input order, so integer frequencies sum; values that do not support
    addition (e.g. time-series payloads) make a duplicate a
    :class:`StoreError` instead of silently dropping data.
    """
    merged = heapq.merge(*streams, key=_FIRST)
    for key, group in groupby(merged, key=_FIRST):
        values = [value for _, value in group]
        if len(values) == 1:
            yield key, values[0]
            continue
        try:
            yield key, reduce(add, values)
        except TypeError as exc:
            raise StoreError(
                f"cannot merge duplicate key {key!r}: its {len(values)} values "
                f"do not support addition ({exc})"
            ) from exc


def merge_records(stores: Iterable[NGramStore]) -> Iterator[Record]:
    """K-way merge of the stores' *main* record streams, summing duplicates.

    Streams each store's :meth:`~repro.ngramstore.reader.NGramStore.items`
    — residual sidecars are not consulted; :func:`merge_stores` streams
    :meth:`~repro.ngramstore.reader.NGramStore.exact_items` instead when it
    performs an exact τ-aware merge.
    """
    return _merge_streams(store.items() for store in stores)


def _residual_exact(store: NGramStore) -> bool:
    """Can this input contribute *exact* union counts to a merge?

    True for τ=1 stores (raw counts are additive) and for τ>1 stores that
    carry their residual sidecar — unless the store is itself the product
    of an ``allow_lower_bound`` merge, whose ``counts: lower_bound`` stamp
    poisons every downstream merge.
    """
    if store.metadata.get("counts") == "lower_bound":
        return False
    return store.min_frequency <= 1 or store.has_residual


def _merged_vocabulary_lines(
    inputs: List[str], stores: List[NGramStore]
) -> Optional[List[str]]:
    """The common vocabulary of the inputs, or None when none persisted one.

    Store keys are term-identifier tuples, and identifiers are only
    comparable across stores encoded against the *same* vocabulary — so
    inputs that persisted one must agree line-for-line.  (Per-shard runs
    satisfy this by encoding every shard with the shared corpus
    dictionary.)  Mismatching vocabularies would silently merge unrelated
    n-grams; refuse instead.
    """
    reference: Optional[List[str]] = None
    reference_dir: Optional[str] = None
    for store_dir, store in zip(inputs, stores):
        if not store.manifest.get("has_vocabulary"):
            continue
        path = os.path.join(store_dir, DICTIONARY_FILENAME)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line.rstrip("\n") for line in handle]
        if reference is None:
            reference, reference_dir = lines, store_dir
        elif lines != reference:
            raise StoreError(
                f"cannot merge stores with different vocabularies: {store_dir!r} "
                f"disagrees with {reference_dir!r}; re-count the shards against "
                "one shared dictionary"
            )
    return reference


def _merged_metadata(
    inputs: List[str],
    stores: List[NGramStore],
    metadata: Optional[Dict[str, Any]],
    overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Manifest metadata for the merged store.

    Entries every input agrees on (same key, same value) are carried over —
    e.g. the algorithm/τ/σ of identical per-shard counting runs — and the
    merge records its own provenance.  Derived statistics get merge-aware
    treatment instead of naive carry-over: ``unigram_total`` *sums* (every
    unigram frequency sums, so the language model's O(1) initialisation
    stays exact) and ``num_ngrams`` is dropped (duplicates collapse; the
    manifest's own ``num_records`` is the authoritative count).  A ``bool``
    is not a total (it would sum as 0/1), and when only *some* inputs carry
    a usable total the field is dropped with a warning — a silently absent
    total sends ``NGramLanguageModel.from_store`` into a full store scan.
    ``overrides`` are values the merge itself computed exactly (e.g. a
    streamed unigram recount); explicit ``metadata`` wins over everything.
    """
    merged: Dict[str, Any] = {}
    first, rest = stores[0].metadata, [store.metadata for store in stores[1:]]
    for key, value in first.items():
        if key in ("unigram_total", "num_ngrams"):
            continue
        if all(other.get(key, _SENTINEL) == value for other in rest):
            merged[key] = value
    if not overrides or "unigram_total" not in overrides:
        unigram_totals = [store.metadata.get("unigram_total") for store in stores]
        usable = [
            total
            for total in unigram_totals
            if isinstance(total, (int, float)) and not isinstance(total, bool)
        ]
        if usable and len(usable) == len(stores):
            merged["unigram_total"] = sum(usable)
        elif any(total is not None for total in unigram_totals):
            missing = [
                os.path.basename(os.path.normpath(path))
                for path, total in zip(inputs, unigram_totals)
                if not isinstance(total, (int, float)) or isinstance(total, bool)
            ]
            warnings.warn(
                f"dropping unigram_total from merged store metadata: inputs "
                f"{missing} carry no usable total (missing, boolean, or "
                "non-numeric), so the sum would be wrong; language models over "
                "the merged store will fall back to a unigram scan",
                stacklevel=2,
            )
    merged["merged_inputs"] = [os.path.basename(os.path.normpath(path)) for path in inputs]
    merged["merged_num_inputs"] = len(inputs)
    if overrides:
        merged.update(overrides)
    if metadata:
        merged.update(metadata)
    return merged


def _boundary_sample(
    stores: List[NGramStore], sample_size: int, num_partitions: int
) -> List[Any]:
    """Keys sampling the merged distribution, preferably from indexes alone.

    Every table's index carries one first key per block, so the union of
    the inputs' block first keys is a records-proportional sample of the
    merged key space — no data block is decoded to plan boundaries, which
    keeps the merge a single streaming pass over block payloads.  Small
    stores (fewer blocks than ~8 keys per requested partition) are too
    coarse for quantiles at that granularity; they fall back to a strided
    record-level sample, whose extra pass is cheap precisely because the
    stores are small.  Either way the result is strided down to
    ``sample_size`` keys.
    """
    keys: List[Any] = []
    for open_store in stores:
        keys.extend(open_store.block_first_keys())
    keys.sort()
    if len(keys) < min(sample_size, 8 * num_partitions):
        total = sum(len(open_store) for open_store in stores)
        stride = max(1, -(-total // sample_size))  # ceil division
        merged = heapq.merge(*(open_store.items() for open_store in stores), key=_FIRST)
        return [key for position, (key, _) in enumerate(merged) if position % stride == 0]
    if len(keys) > sample_size:
        stride = max(1, -(-len(keys) // sample_size))
        keys = keys[::stride]
    return keys


class _PartitionSink:
    """Writes one sorted record stream into boundary-aligned partition tables.

    The stream's keys are non-decreasing, so each partition table is
    written exactly once, in order; trailing partitions the stream never
    reached are created empty so the manifest's partition count always
    matches the boundary count.
    """

    def __init__(
        self,
        out_dir: str,
        store: StoreConfig,
        boundaries: List[Any],
        residual: bool = False,
    ) -> None:
        self.out_dir = out_dir
        self.store = store
        self.boundaries = boundaries
        self.residual = residual
        self.partitions: List[Dict[str, Any]] = []
        self.num_records = 0
        self._writer = self._open_writer()

    def _open_writer(self) -> TableWriter:
        index = len(self.partitions)
        metadata: Dict[str, Any] = {"partition": index}
        if self.residual:
            metadata["residual"] = True
        return TableWriter(
            os.path.join(self.out_dir, PARTITION_PATTERN.format(index=index)),
            codec=self.store.codec,
            records_per_block=self.store.records_per_block,
            metadata=metadata,
            bloom_bits_per_key=self.store.bloom_bits_per_key,
        )

    def _finish_writer(self) -> None:
        path = self._writer.close()
        self.partitions.append(
            {
                "file": os.path.basename(path),
                "num_records": self._writer.num_records,
                "serialized_bytes": self._writer.serialized_bytes,
                "file_bytes": os.path.getsize(path),
            }
        )

    def append(self, key: Any, value: Any) -> None:
        while bisect_right(self.boundaries, key) > len(self.partitions):
            self._finish_writer()
            self._writer = self._open_writer()
        self._writer.append(key, value)
        self.num_records += 1

    def close(self) -> None:
        self._finish_writer()
        while len(self.partitions) < len(self.boundaries) + 1:
            self._writer = self._open_writer()
            self._finish_writer()

    def abort(self) -> None:
        self._writer.abort()


def merge_stores(
    inputs: Iterable[str],
    out_dir: str,
    store: Optional[StoreConfig] = None,
    metadata: Optional[Dict[str, Any]] = None,
    min_frequency: Optional[int] = None,
    allow_lower_bound: bool = False,
) -> str:
    """Merge the store directories ``inputs`` into a new store at ``out_dir``.

    ``store`` controls the output layout (partitions, codec, block size,
    boundary sample size) exactly as it does for
    :func:`~repro.ngramstore.build.build_store`; inputs may use any mix of
    codecs and partition counts.

    When every input is *residual-exact* (τ=1, or τ>1 with a residual
    sidecar), the merge streams main+residual per input and re-applies the
    output threshold ``min_frequency`` (default: the largest input τ) to
    the summed counts, writing a merged residual sidecar of its own — the
    result is byte-for-byte what a from-scratch recount of the union corpus
    would produce, at any τ.  Inputs that declare ``min_frequency`` > 1 but
    carry no residual cannot merge exactly (their sub-τ counts are gone);
    merging two or more of them raises :class:`StoreError` unless
    ``allow_lower_bound=True``, which keeps the legacy sum-the-survivors
    behaviour and stamps ``counts: lower_bound`` into the merged metadata.
    A single such input is a pure repartition (no summing), which is always
    allowed and carries its metadata unchanged.

    Returns ``out_dir``.
    """
    input_dirs = [str(path) for path in inputs]
    if not input_dirs:
        raise StoreError("merge_stores needs at least one input store")
    for path in input_dirs:
        if os.path.abspath(path) == os.path.abspath(out_dir):
            raise StoreError(f"merge output {out_dir!r} cannot be one of the inputs")
    store = store if store is not None else StoreConfig()
    if min_frequency is not None and min_frequency < 1:
        raise StoreError(f"merge min_frequency must be >= 1, got {min_frequency}")

    opened = [NGramStore.open(path) for path in input_dirs]
    try:
        inexact = [
            path
            for path, open_store in zip(input_dirs, opened)
            if not _residual_exact(open_store)
        ]
        exact = not inexact
        lower_bound = False
        if not exact and len(opened) > 1:
            if not allow_lower_bound:
                raise StoreError(
                    f"cannot merge exactly: {inexact[0]!r} declares "
                    f"min_frequency > 1 but carries no residual table, so its "
                    "counts in [1, τ) were dropped at count time and the merged "
                    "counts would silently undercount the union; rebuild the "
                    "shards with a residual sidecar (count at τ=1 with "
                    "StoreConfig(min_frequency=τ)), or pass "
                    "allow_lower_bound=True to keep the old behaviour and stamp "
                    "the output metadata with counts=lower_bound"
                )
            lower_bound = True
        if not exact and min_frequency is not None:
            raise StoreError(
                "cannot apply a merge min_frequency without residual tables: "
                f"{inexact[0]!r} carries no sub-τ counts to threshold against"
            )

        out_tau = 1
        if exact:
            out_tau = (
                min_frequency
                if min_frequency is not None
                else max(open_store.min_frequency for open_store in opened)
            )

        vocabulary_lines = _merged_vocabulary_lines(input_dirs, opened)
        sampled = list(opened)
        if exact:
            sampled.extend(
                open_store.residual
                for open_store in opened
                if open_store.residual is not None
            )
        boundaries = plan_boundaries(
            _boundary_sample(sampled, store.sample_size, store.num_partitions),
            store.num_partitions,
        )

        # The single streaming pass: write the merged stream straight into
        # per-partition tables (main, and — for exact τ>1 output — the
        # residual sidecar alongside).
        clear_store_dir(out_dir)
        main_sink = _PartitionSink(out_dir, store, boundaries)
        residual_sink: Optional[_PartitionSink] = None
        overrides: Optional[Dict[str, Any]] = None
        if exact and out_tau > 1:
            residual_dir = os.path.join(out_dir, RESIDUAL_DIRNAME)
            os.makedirs(residual_dir, exist_ok=True)
            residual_sink = _PartitionSink(residual_dir, store, boundaries, residual=True)
        try:
            if residual_sink is not None:
                # Exact τ>1 merge: recover each input's full count table
                # (main + residual), sum, and re-split at the output τ.
                # The full stream passes through, so the unigram aggregates
                # the language model needs are recomputed exactly for free.
                stream = _merge_streams(
                    open_store.exact_items() for open_store in opened
                )
                unigram_total = 0
                vocabulary_size = 0
                for key, value in stream:
                    _check_splittable_count(key, value, out_tau)
                    if len(key) == 1:
                        unigram_total += value
                        vocabulary_size += 1
                    if value >= out_tau:
                        main_sink.append(key, value)
                    else:
                        residual_sink.append(key, value)
                residual_sink.close()
                overrides = {
                    "min_frequency": out_tau,
                    "num_ngrams": main_sink.num_records + residual_sink.num_records,
                    "unigram_total": unigram_total,
                    "vocabulary_size": vocabulary_size,
                }
            else:
                if exact:
                    stream = _merge_streams(
                        open_store.exact_items() for open_store in opened
                    )
                    if any(
                        "min_frequency" in open_store.metadata for open_store in opened
                    ):
                        overrides = {"min_frequency": out_tau}
                else:
                    stream = merge_records(opened)
                    if lower_bound:
                        overrides = {"counts": "lower_bound"}
                for key, value in stream:
                    main_sink.append(key, value)
            main_sink.close()
        except Exception:
            main_sink.abort()
            if residual_sink is not None:
                residual_sink.abort()
            raise

        if vocabulary_lines is not None:
            write_dictionary(out_dir, vocabulary_lines)
        residual_entry: Optional[Dict[str, Any]] = None
        if residual_sink is not None:
            write_store_manifest(
                residual_sink.out_dir,
                codec=store.codec,
                records_per_block=store.records_per_block,
                boundaries=boundaries,
                partitions=residual_sink.partitions,
                has_vocabulary=False,
                metadata={
                    "residual": True,
                    "residual_below": out_tau,
                    "min_frequency": 1,
                },
            )
            residual_entry = {
                "directory": RESIDUAL_DIRNAME,
                "below": out_tau,
                "num_records": residual_sink.num_records,
            }
        write_store_manifest(
            out_dir,
            codec=store.codec,
            records_per_block=store.records_per_block,
            boundaries=boundaries,
            partitions=main_sink.partitions,
            has_vocabulary=vocabulary_lines is not None,
            metadata=_merged_metadata(input_dirs, opened, metadata, overrides),
            residual=residual_entry,
        )
    finally:
        for open_store in opened:
            open_store.close()
    return out_dir
