"""Compaction: k-way merge of several stores into one.

Each input store streams its records in global key order (the reader
chains its sorted, disjoint partitions), so merging stores is a single
``heapq.merge`` over ``k`` sorted streams — the LSM/SSTable compaction
idiom, and the MapReduce-free analogue of re-running the total-order-sort
job over the union.  Duplicate keys (the same n-gram counted in several
per-shard runs) are summed; partition boundaries are re-derived from the
inputs' block-index first keys (a records-proportional sample that costs
zero data-block reads, fed to the same quantile planning the build job
uses) so the output's partitioning reflects the merged key distribution,
not any single input's.

Nothing is materialised: boundary planning reads only the block indexes,
the merge itself is one streaming pass over the inputs, and each output
partition is written by one :class:`~repro.ngramstore.table.TableWriter`
as the merged stream crosses its boundaries.

Per-shard counting runs merge *exactly* when they counted with τ = 1
(raw counts are additive across a document partition); with τ > 1 each
shard has already dropped its locally-infrequent n-grams, so the merged
counts are a lower bound on a union recount.
"""

from __future__ import annotations

import heapq
import os
from bisect import bisect_right
from functools import reduce
from itertools import groupby
from operator import add, itemgetter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.config import StoreConfig
from repro.exceptions import StoreError
from repro.ngramstore.build import (
    DICTIONARY_FILENAME,
    PARTITION_PATTERN,
    clear_store_dir,
    plan_boundaries,
    write_dictionary,
    write_store_manifest,
)
from repro.ngramstore.reader import NGramStore
from repro.ngramstore.table import TableWriter

Record = Tuple[Any, Any]

_FIRST = itemgetter(0)

_SENTINEL = object()


def merge_records(stores: Iterable[NGramStore]) -> Iterator[Record]:
    """K-way merge of the stores' sorted record streams, summing duplicates.

    Values of a duplicated key are combined with ``+`` left-to-right in
    input order, so integer frequencies sum; values that do not support
    addition (e.g. time-series payloads) make a duplicate a
    :class:`StoreError` instead of silently dropping data.
    """
    merged = heapq.merge(*(store.items() for store in stores), key=_FIRST)
    for key, group in groupby(merged, key=_FIRST):
        values = [value for _, value in group]
        if len(values) == 1:
            yield key, values[0]
            continue
        try:
            yield key, reduce(add, values)
        except TypeError as exc:
            raise StoreError(
                f"cannot merge duplicate key {key!r}: its {len(values)} values "
                f"do not support addition ({exc})"
            ) from exc


def _merged_vocabulary_lines(
    inputs: List[str], stores: List[NGramStore]
) -> Optional[List[str]]:
    """The common vocabulary of the inputs, or None when none persisted one.

    Store keys are term-identifier tuples, and identifiers are only
    comparable across stores encoded against the *same* vocabulary — so
    inputs that persisted one must agree line-for-line.  (Per-shard runs
    satisfy this by encoding every shard with the shared corpus
    dictionary.)  Mismatching vocabularies would silently merge unrelated
    n-grams; refuse instead.
    """
    reference: Optional[List[str]] = None
    reference_dir: Optional[str] = None
    for store_dir, store in zip(inputs, stores):
        if not store.manifest.get("has_vocabulary"):
            continue
        path = os.path.join(store_dir, DICTIONARY_FILENAME)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line.rstrip("\n") for line in handle]
        if reference is None:
            reference, reference_dir = lines, store_dir
        elif lines != reference:
            raise StoreError(
                f"cannot merge stores with different vocabularies: {store_dir!r} "
                f"disagrees with {reference_dir!r}; re-count the shards against "
                "one shared dictionary"
            )
    return reference


def _merged_metadata(
    inputs: List[str], stores: List[NGramStore], metadata: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """Manifest metadata for the merged store.

    Entries every input agrees on (same key, same value) are carried over —
    e.g. the algorithm/τ/σ of identical per-shard counting runs — and the
    merge records its own provenance.  Derived statistics get merge-aware
    treatment instead of naive carry-over: ``unigram_total`` *sums* (every
    unigram frequency sums, so the language model's O(1) initialisation
    stays exact) and ``num_ngrams`` is dropped (duplicates collapse; the
    manifest's own ``num_records`` is the authoritative count).  Explicit
    ``metadata`` wins on conflicts.
    """
    merged: Dict[str, Any] = {}
    first, rest = stores[0].metadata, [store.metadata for store in stores[1:]]
    for key, value in first.items():
        if key in ("unigram_total", "num_ngrams"):
            continue
        if all(other.get(key, _SENTINEL) == value for other in rest):
            merged[key] = value
    unigram_totals = [store.metadata.get("unigram_total") for store in stores]
    if all(isinstance(total, (int, float)) for total in unigram_totals):
        merged["unigram_total"] = sum(unigram_totals)
    merged["merged_inputs"] = [os.path.basename(os.path.normpath(path)) for path in inputs]
    merged["merged_num_inputs"] = len(inputs)
    if metadata:
        merged.update(metadata)
    return merged


def _boundary_sample(
    stores: List[NGramStore], sample_size: int, num_partitions: int
) -> List[Any]:
    """Keys sampling the merged distribution, preferably from indexes alone.

    Every table's index carries one first key per block, so the union of
    the inputs' block first keys is a records-proportional sample of the
    merged key space — no data block is decoded to plan boundaries, which
    keeps the merge a single streaming pass over block payloads.  Small
    stores (fewer blocks than ~8 keys per requested partition) are too
    coarse for quantiles at that granularity; they fall back to a strided
    record-level sample, whose extra pass is cheap precisely because the
    stores are small.  Either way the result is strided down to
    ``sample_size`` keys.
    """
    keys: List[Any] = []
    for open_store in stores:
        keys.extend(open_store.block_first_keys())
    keys.sort()
    if len(keys) < min(sample_size, 8 * num_partitions):
        total = sum(len(open_store) for open_store in stores)
        stride = max(1, -(-total // sample_size))  # ceil division
        merged = heapq.merge(*(open_store.items() for open_store in stores), key=_FIRST)
        return [key for position, (key, _) in enumerate(merged) if position % stride == 0]
    if len(keys) > sample_size:
        stride = max(1, -(-len(keys) // sample_size))
        keys = keys[::stride]
    return keys


def merge_stores(
    inputs: Iterable[str],
    out_dir: str,
    store: Optional[StoreConfig] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> str:
    """Merge the store directories ``inputs`` into a new store at ``out_dir``.

    ``store`` controls the output layout (partitions, codec, block size,
    boundary sample size) exactly as it does for
    :func:`~repro.ngramstore.build.build_store`; inputs may use any mix of
    codecs and partition counts.  Returns ``out_dir``.
    """
    input_dirs = [str(path) for path in inputs]
    if not input_dirs:
        raise StoreError("merge_stores needs at least one input store")
    for path in input_dirs:
        if os.path.abspath(path) == os.path.abspath(out_dir):
            raise StoreError(f"merge output {out_dir!r} cannot be one of the inputs")
    store = store if store is not None else StoreConfig()

    opened = [NGramStore.open(path) for path in input_dirs]
    try:
        vocabulary_lines = _merged_vocabulary_lines(input_dirs, opened)
        boundaries = plan_boundaries(
            _boundary_sample(opened, store.sample_size, store.num_partitions),
            store.num_partitions,
        )

        # The single streaming pass: write the merged stream straight into
        # per-partition tables.  The stream is sorted, so the owning
        # partition index is non-decreasing and each table is written
        # exactly once, in order.
        clear_store_dir(out_dir)
        partitions: List[Dict[str, Any]] = []

        def finish(writer: TableWriter) -> None:
            path = writer.close()
            partitions.append(
                {
                    "file": os.path.basename(path),
                    "num_records": writer.num_records,
                    "serialized_bytes": writer.serialized_bytes,
                    "file_bytes": os.path.getsize(path),
                }
            )

        def open_writer() -> TableWriter:
            return TableWriter(
                os.path.join(out_dir, PARTITION_PATTERN.format(index=len(partitions))),
                codec=store.codec,
                records_per_block=store.records_per_block,
                metadata={"partition": len(partitions)},
                bloom_bits_per_key=store.bloom_bits_per_key,
            )

        writer = open_writer()
        try:
            for key, value in merge_records(opened):
                while bisect_right(boundaries, key) > len(partitions):
                    finish(writer)
                    writer = open_writer()
                writer.append(key, value)
            finish(writer)
            while len(partitions) < len(boundaries) + 1:
                writer = open_writer()
                finish(writer)
        except Exception:
            writer.abort()
            raise

        if vocabulary_lines is not None:
            write_dictionary(out_dir, vocabulary_lines)
        write_store_manifest(
            out_dir,
            codec=store.codec,
            records_per_block=store.records_per_block,
            boundaries=boundaries,
            partitions=partitions,
            has_vocabulary=vocabulary_lines is not None,
            metadata=_merged_metadata(input_dirs, opened, metadata),
        )
    finally:
        for open_store in opened:
            open_store.close()
    return out_dir
