"""Writing and querying one sorted, block-compressed table file.

:class:`TableWriter` streams already-sorted ``(ngram, value)`` records into
the immutable format of :mod:`repro.ngramstore.format`, enforcing the
sorted invariant (strictly increasing keys) as it writes — the property
every read path relies on.  :class:`Table` opens a finished file and serves
point lookups, range/prefix scans and top-k queries with seek-based block
reads: a query decodes at most the blocks it touches, and an LRU block
cache (:class:`BlockCache`, the :mod:`repro.kvstore.cached` policy applied
to blocks instead of keys) keeps the working set bounded by
``block size x cache capacity`` no matter how large the table is.
"""

from __future__ import annotations

import heapq
import mmap
import os
import threading
import time
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from itertools import islice
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import StoreError
from repro.kvstore.cached import CacheStats
from repro.mapreduce.serialization import record_size
from repro.ngramstore.format import (
    FORMAT_VERSION,
    MAGIC,
    BlockHandle,
    block_checksum,
    decode_block,
    decode_block_view,
    encode_block,
    read_footer,
    read_index,
    write_footer,
    write_index,
)
from repro.util.bloom import DEFAULT_BITS_PER_KEY, BloomFilter
from repro.util.codecs import get_codec

Record = Tuple[Any, Any]

#: Records per data block unless the writer is told otherwise.  Blocks are
#: the unit of compression *and* of random-read I/O, so the value trades
#: point-lookup cost (decode one block) against compression ratio.
DEFAULT_RECORDS_PER_BLOCK = 1024

#: Decoded blocks kept by a table's LRU cache unless overridden.
DEFAULT_CACHE_BLOCKS = 32

#: Orders accepted by :meth:`Table.top_k`.
TOP_K_ORDERS = ("frequency", "key")


def prefix_records(scan, prefix: Tuple) -> Iterator[Record]:
    """Restrict a scan to keys starting with ``prefix`` (tuple keys).

    ``scan`` is a ``scan(start=..., stop=...)`` callable.  Keys sharing a
    prefix are contiguous under tuple ordering, so this is one bounded
    range scan starting at ``prefix`` itself, stopped at the first
    non-matching key.  Shared by the single-table and multi-partition
    query paths so prefix semantics cannot diverge.
    """
    prefix = tuple(prefix)
    if not prefix:
        yield from scan()
        return
    length = len(prefix)
    for key, value in scan(start=prefix):
        if tuple(key[:length]) != prefix:
            return
        yield key, value


def validate_top_k(k: int, order: str) -> None:
    """Reject invalid top-k parameters (shared by every top-k entry point)."""
    if order not in TOP_K_ORDERS:
        raise StoreError(f"top_k order must be one of {', '.join(TOP_K_ORDERS)}, got {order!r}")
    if k < 1:
        raise StoreError(f"top_k k must be >= 1, got {k}")


def _frequency_type_error(exc: TypeError) -> StoreError:
    # Stores may hold non-numeric values (e.g. time-series dicts), which
    # have no frequency ranking — fail as a store error, not a bare
    # TypeError from deep inside a heap comparison.
    return StoreError(
        f"top_k by frequency needs numeric values: {exc}; "
        "use order='key' for stores with non-numeric values"
    )


def top_k_records(records: Iterator[Record], k: int, order: str) -> List[Record]:
    """The ``k`` greatest records of a stream under ``order``, using O(k) memory.

    ``"frequency"`` ranks by descending value with the key as tie-breaker
    (the order of :meth:`repro.ngrams.statistics.NGramStatistics.top`);
    ``"key"`` ranks by ascending key — for a sorted stream that is simply
    the first ``k`` records, but the stream is not required to be sorted.
    """
    validate_top_k(k, order)
    if order == "frequency":
        try:
            return heapq.nsmallest(k, records, key=lambda record: (-record[1], record[0]))
        except TypeError as exc:
            raise _frequency_type_error(exc) from exc
    return heapq.nsmallest(k, records, key=lambda record: record[0])


class _ReverseKey:
    """Wraps a key so heap ordering prefers the *smaller* key on value ties."""

    __slots__ = ("key",)

    def __init__(self, key: Any) -> None:
        self.key = key

    def __lt__(self, other: "_ReverseKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ReverseKey) and other.key == self.key


class TopKAccumulator:
    """O(k) heap of the best records by ``(-value, key)``, shared across tables.

    The heap root is always the *worst* retained record, so its sort key is
    the floor a candidate must beat.  :meth:`admissible` turns a block's
    persisted max-value summary into a skip decision: every record of the
    block has ``value <= max_value`` and ``key >= first_key``, hence a sort
    key of at least ``(-max_value, first_key)`` — if even that bound cannot
    beat the floor, the block need not be read at all.  ``blocks_scanned``
    and ``blocks_skipped`` count those decisions for benchmarks and tests.

    Results are identical to a full scan: table keys are unique, so the
    composite sort order is total and the top-k set is unambiguous.
    """

    __slots__ = ("k", "_heap", "blocks_scanned", "blocks_skipped")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise StoreError(f"top_k k must be >= 1, got {k}")
        self.k = k
        self._heap: List[Tuple[Any, _ReverseKey]] = []
        self.blocks_scanned = 0
        self.blocks_skipped = 0

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    def admissible(self, max_value: Any, first_key: Any) -> bool:
        """Can a block bounded by ``max_value``/``first_key`` still contribute?"""
        if not self.full or max_value is None:
            return True
        worst_value, worst_key = self._heap[0][0], self._heap[0][1].key
        return (-max_value, first_key) < (-worst_value, worst_key)

    def offer(self, key: Any, value: Any) -> None:
        entry = (value, _ReverseKey(key))
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif self._heap[0] < entry:
            heapq.heapreplace(self._heap, entry)

    def results(self) -> List[Record]:
        """The retained records, best first (descending value, ascending key)."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], entry[1].key))
        return [(entry[1].key, entry[0]) for entry in ordered]


#: What the cache holds per block: the decoded keys (for bisection) and the
#: full records, decoded once — point lookups on cache hits are then a pure
#: O(log block) bisect with no per-lookup allocation.
DecodedBlock = Tuple[List[Any], List[Record]]


class BlockCache:
    """Thread-safe LRU cache of decoded blocks.

    Keys are arbitrary hashable block identities — a single table uses its
    block ordinals, while a cache *shared* across tables (one process-wide
    cache for a whole store, or a server's stores) namespaces them by table
    path.  All bookkeeping, including the hit/miss/eviction counters,
    happens under one lock so concurrent readers never corrupt the LRU
    order or the stats.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_BLOCKS) -> None:
        if capacity < 1:
            raise StoreError(f"block cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._blocks: "OrderedDict[Any, DecodedBlock]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, block_key: Any) -> Optional[DecodedBlock]:
        with self._lock:
            if block_key in self._blocks:
                self.stats.hits += 1
                self._blocks.move_to_end(block_key)
                return self._blocks[block_key]
            self.stats.misses += 1
            return None

    def put(self, block_key: Any, block: DecodedBlock) -> None:
        with self._lock:
            if block_key in self._blocks:
                self._blocks.move_to_end(block_key)
            self._blocks[block_key] = block
            while len(self._blocks) > self.capacity:
                self._blocks.popitem(last=False)
                self.stats.evictions += 1

    def stats_snapshot(self) -> CacheStats:
        """A consistent copy of the counters (the live object keeps mutating)."""
        with self._lock:
            return CacheStats(
                hits=self.stats.hits,
                misses=self.stats.misses,
                evictions=self.stats.evictions,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._blocks)

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()


def _block_max_value(records: List[Record]) -> Any:
    """The block's largest value, or None when values are not plain numbers.

    Only ``int``/``float`` summaries are persisted — anything else (dicts,
    bools, mixed types) yields ``None``, which the top-k reader treats as
    "unknown, never skip", exactly like a pre-summary table.
    """
    try:
        largest = max(value for _, value in records)
    except TypeError:
        return None
    if isinstance(largest, bool) or not isinstance(largest, (int, float)):
        return None
    return largest


class TableWriter:
    """Streams sorted records into one immutable table file."""

    def __init__(
        self,
        path: str,
        codec: str = "none",
        records_per_block: int = DEFAULT_RECORDS_PER_BLOCK,
        metadata: Optional[Dict[str, Any]] = None,
        bloom_bits_per_key: int = DEFAULT_BITS_PER_KEY,
    ) -> None:
        if records_per_block < 1:
            raise StoreError(f"records_per_block must be >= 1, got {records_per_block}")
        if bloom_bits_per_key < 0:
            raise StoreError(
                f"bloom_bits_per_key must be >= 0 (0 disables), got {bloom_bits_per_key}"
            )
        self.path = path
        self.codec_name = codec
        self._codec = get_codec(codec)
        self.records_per_block = records_per_block
        self.bloom_bits_per_key = bloom_bits_per_key
        self.metadata = dict(metadata) if metadata else {}
        self.num_records = 0
        self.serialized_bytes = 0
        self._buffer: List[Record] = []
        self._index: List[BlockHandle] = []
        self._last_key: Any = None
        self._handle = open(path, "wb")
        self._handle.write(MAGIC)
        self._closed = False

    # ----------------------------------------------------------- internals
    def _flush_block(self) -> None:
        if not self._buffer:
            return
        offset = self._handle.tell()
        payload = encode_block(self._buffer, self._codec)
        self._handle.write(payload)
        bloom = None
        if self.bloom_bits_per_key:
            bloom = BloomFilter.build(
                [key for key, _ in self._buffer], self.bloom_bits_per_key
            ).to_spec()
        self._index.append(
            BlockHandle(
                first_key=self._buffer[0][0],
                last_key=self._buffer[-1][0],
                offset=offset,
                length=len(payload),
                num_records=len(self._buffer),
                max_value=_block_max_value(self._buffer),
                bloom=bloom,
                checksum=block_checksum(payload),
            )
        )
        self._buffer = []

    # ------------------------------------------------------------ interface
    def append(self, key: Any, value: Any) -> None:
        """Append one record; keys must arrive in strictly increasing order."""
        if self._closed:
            raise StoreError("cannot append to a closed table writer")
        if self._last_key is not None and not self._last_key < key:
            raise StoreError(
                f"unsorted write: key {key!r} does not sort after {self._last_key!r} "
                "(table keys must be strictly increasing)"
            )
        self._buffer.append((key, value))
        self._last_key = key
        self.num_records += 1
        self.serialized_bytes += record_size(key, value)
        if len(self._buffer) >= self.records_per_block:
            self._flush_block()

    def extend(self, records: Any) -> None:
        """Append a stream of sorted records."""
        for key, value in records:
            self.append(key, value)

    def close(self) -> str:
        """Seal the table (index + footer) and return its path."""
        if self._closed:
            return self.path
        self._flush_block()
        index_offset, index_length = write_index(self._handle, self._index)
        footer = {
            "version": FORMAT_VERSION,
            "codec": self.codec_name,
            "num_records": self.num_records,
            "num_blocks": len(self._index),
            "serialized_bytes": self.serialized_bytes,
            "index_offset": index_offset,
            "index_length": index_length,
            "min_key": self._index[0].first_key if self._index else None,
            "max_key": self._index[-1].last_key if self._index else None,
            "metadata": self.metadata,
        }
        write_footer(self._handle, footer)
        self._handle.close()
        self._closed = True
        return self.path

    def abort(self) -> None:
        """Close and remove the partial file after a failure."""
        if not self._closed:
            self._handle.close()
            self._closed = True
        try:
            os.remove(self.path)
        except OSError:
            pass

    def __enter__(self) -> "TableWriter":
        return self

    def __exit__(self, exc_type: Any, *exc_info: Any) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


class Table:
    """Read-only view over one table file; queries decode blocks on demand.

    Safe for concurrent readers: block decodes go through the (locked)
    :class:`BlockCache` and the shared file handle's seek+read pair is
    serialised by an I/O lock.  Pass ``cache`` to share one block cache
    across several tables (cache entries are then namespaced by the table's
    absolute path); otherwise the table owns a private cache of
    ``cache_blocks`` entries.

    With ``use_mmap`` (the default) an uncompressed table is mapped into
    memory and block reads become lock-free ``memoryview`` slices decoded
    in place — no seek, no read-copy.  Compressed tables, and platforms
    where :func:`mmap.mmap` fails (empty files, exotic filesystems), fall
    back to the locked seek+read path transparently; results are identical
    either way.  ``blocks_decoded`` and ``bloom_rejections`` count the I/O
    decisions for benchmarks and tests: a point miss answered by a block's
    Bloom filter bumps ``bloom_rejections`` and decodes nothing.
    """

    def __init__(
        self,
        path: str,
        cache_blocks: int = DEFAULT_CACHE_BLOCKS,
        cache: Optional[BlockCache] = None,
        use_mmap: bool = True,
    ) -> None:
        self.path = path
        self._handle = open(path, "rb")
        try:
            self._footer = read_footer(self._handle)
            self._index = read_index(self._handle, self._footer)
        except Exception:
            self._handle.close()
            raise
        self._codec = get_codec(self._footer["codec"])
        self._shared_cache = cache is not None
        self._cache = cache if cache is not None else BlockCache(cache_blocks)
        # Private caches are keyed by block ordinal alone; a shared cache
        # needs the table identity too, and the absolute path makes two
        # openings of the same (immutable) file share entries.
        self._cache_namespace = os.path.abspath(path) if self._shared_cache else None
        self._first_keys = [entry.first_key for entry in self._index]
        self._blooms = [BloomFilter.from_spec(entry.bloom) for entry in self._index]
        self._io_lock = threading.Lock()
        self._mmap: Optional[mmap.mmap] = None
        if use_mmap and self._footer["codec"] == "none":
            # Zero-copy only pays off when block bytes are the record frames
            # themselves; a compressed block must be copied to decompress
            # anyway, so those tables keep the plain-file path.
            try:
                self._mmap = mmap.mmap(self._handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (OSError, ValueError):
                self._mmap = None
        self.blocks_decoded = 0
        self.bloom_rejections = 0
        self.blocks_checksum_failed = 0
        self.decode_seconds = 0.0
        self._closed = False

    # ----------------------------------------------------------- properties
    @property
    def codec_name(self) -> str:
        return self._footer["codec"]

    @property
    def num_records(self) -> int:
        return self._footer["num_records"]

    @property
    def num_blocks(self) -> int:
        return self._footer["num_blocks"]

    @property
    def min_key(self) -> Any:
        return self._footer["min_key"]

    @property
    def max_key(self) -> Any:
        return self._footer["max_key"]

    @property
    def metadata(self) -> Dict[str, Any]:
        return self._footer["metadata"]

    @property
    def cache_stats(self) -> CacheStats:
        """Counters of this table's cache (cache-wide totals when shared)."""
        return self._cache.stats

    @property
    def mmap_active(self) -> bool:
        """True when block reads are zero-copy mmap slices."""
        return self._mmap is not None

    def block_first_keys(self) -> List[Any]:
        """Every block's first key, from the index alone (no block reads).

        One key per block, so the list is a records-proportional sample of
        the table's key distribution — what boundary planning needs.
        """
        return list(self._first_keys)

    def __len__(self) -> int:
        return self.num_records

    # ------------------------------------------------------------ internals
    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"table {self.path!r} is closed")

    def _block_key(self, block_index: int) -> Any:
        if self._cache_namespace is None:
            return block_index
        return (self._cache_namespace, block_index)

    def _verify_checksum(self, entry: BlockHandle, block_index: int, payload: Any) -> None:
        """Check a block's stored bytes against its index CRC before decoding.

        Legacy indexes carry ``checksum=None`` and are accepted as-is; a
        mismatch on a checksummed block is unambiguous on-disk corruption,
        reported with the partition/block identity the operator needs to
        locate the damaged file.
        """
        if entry.checksum is None:
            return
        actual = block_checksum(payload)
        if actual == entry.checksum:
            return
        self.blocks_checksum_failed += 1
        partition = self.metadata.get("partition")
        where = f"partition {partition}, " if partition is not None else ""
        raise StoreError(
            f"checksum mismatch in block {block_index} ({where}{self.path!r}): "
            f"stored {entry.checksum:#010x}, computed {actual:#010x} — "
            "the table file is corrupt"
        )

    def _load_block(self, block_index: int) -> "DecodedBlock":
        block = self._cache.get(self._block_key(block_index))
        if block is not None:
            return block
        entry = self._index[block_index]
        # Concurrent misses on the same block both decode and both put —
        # harmless duplicate work; what must be serialised is the shared
        # handle's seek+read pair, or two readers interleave positions.
        # The mmap path has no shared cursor, so it takes no lock at all.
        if self._mmap is not None:
            if entry.offset + entry.length > len(self._mmap):
                raise StoreError(
                    f"truncated block {block_index} in {self.path!r}: "
                    f"block at offset {entry.offset} overruns the mapped file"
                )
            view = memoryview(self._mmap)[entry.offset : entry.offset + entry.length]
            self._verify_checksum(entry, block_index, view)
            decode_started = time.perf_counter()
            records = decode_block_view(view)
        else:
            with self._io_lock:
                self._handle.seek(entry.offset)
                payload = self._handle.read(entry.length)
            if len(payload) != entry.length:
                raise StoreError(
                    f"truncated block {block_index} in {self.path!r}: "
                    f"expected {entry.length} bytes, got {len(payload)}"
                )
            self._verify_checksum(entry, block_index, payload)
            decode_started = time.perf_counter()
            records = decode_block(payload, self._codec)
        self.blocks_decoded += 1
        self.decode_seconds += time.perf_counter() - decode_started
        if len(records) != entry.num_records:
            raise StoreError(
                f"block {block_index} in {self.path!r} decoded to {len(records)} "
                f"records, index says {entry.num_records}"
            )
        block = ([key for key, _ in records], records)
        self._cache.put(self._block_key(block_index), block)
        return block

    def _block_for_key(self, key: Any) -> Optional[int]:
        """Index of the single block that may contain ``key`` (None if out of range)."""
        if not self._index:
            return None
        position = bisect_right(self._first_keys, key) - 1
        if position < 0:
            return None
        if self._index[position].last_key < key:
            return None
        return position

    # ------------------------------------------------------------- queries
    def get(self, key: Any, default: Any = None) -> Any:
        """Point lookup: binary search the index, decode one block, bisect it.

        When the candidate block carries a Bloom filter, a filter miss
        answers the lookup from the index alone — no block is read or
        decoded (``bloom_rejections`` counts these short-circuits).
        """
        self._check_open()
        block_index = self._block_for_key(key)
        if block_index is None:
            return default
        bloom = self._blooms[block_index]
        if bloom is not None and not bloom.might_contain(key):
            self.bloom_rejections += 1
            return default
        keys, records = self._load_block(block_index)
        position = bisect_left(keys, key)
        if position < len(records) and keys[position] == key:
            return records[position][1]
        return default

    def __contains__(self, key: object) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def scan(self, start: Any = None, stop: Any = None) -> Iterator[Record]:
        """Stream records with ``start <= key < stop`` in key order.

        ``None`` bounds are open; the scan seeks straight to the first
        candidate block and stops as soon as a key reaches ``stop``, so a
        narrow range reads a handful of blocks regardless of table size.
        """
        self._check_open()
        if not self._index:
            return
        if start is None:
            first_block = 0
        else:
            first_block = max(0, bisect_right(self._first_keys, start) - 1)
        for block_index in range(first_block, len(self._index)):
            entry = self._index[block_index]
            if start is not None and entry.last_key < start:
                continue
            if stop is not None and not entry.first_key < stop:
                return
            for key, value in self._load_block(block_index)[1]:
                if start is not None and key < start:
                    continue
                if stop is not None and not key < stop:
                    return
                yield key, value

    def prefix(self, prefix: Tuple) -> Iterator[Record]:
        """Stream every record whose key starts with ``prefix`` (tuple keys)."""
        self._check_open()
        return prefix_records(self.scan, prefix)

    def top_k_into(self, accumulator: TopKAccumulator) -> None:
        """Offer this table's candidates to a (possibly shared) top-k heap.

        Blocks whose persisted max-value summary cannot beat the heap floor
        are skipped without being read or decoded; tables written before
        the summary existed (``max_value is None``) are always scanned, so
        results match a full scan on any store.
        """
        self._check_open()
        for block_index, entry in enumerate(self._index):
            if not accumulator.admissible(entry.max_value, entry.first_key):
                accumulator.blocks_skipped += 1
                continue
            accumulator.blocks_scanned += 1
            for key, value in self._load_block(block_index)[1]:
                accumulator.offer(key, value)

    def top_k(self, k: int, order: str = "frequency") -> List[Record]:
        """The ``k`` top records (by value, or by key) without materialising."""
        self._check_open()
        validate_top_k(k, order)
        if order == "key":
            # Scans stream in key order, so the k smallest keys are simply
            # the first k records — no heap, no full pass.
            return list(islice(self.scan(), k))
        accumulator = TopKAccumulator(k)
        try:
            self.top_k_into(accumulator)
            return accumulator.results()
        except TypeError as exc:
            raise _frequency_type_error(exc) from exc

    def iter_records(self) -> Iterator[Record]:
        """Stream the whole table in key order."""
        return self.scan()

    def __iter__(self) -> Iterator[Record]:
        return self.iter_records()

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if not self._shared_cache:
            # A shared cache outlives any one table; its entries are evicted
            # by LRU pressure, not by a table closing.
            self._cache.clear()
        if self._mmap is not None:
            # decode_block_view copies records out via pickle.loads, so no
            # cached block holds a live view into the map — safe to close.
            self._mmap.close()
            self._mmap = None
        self._handle.close()

    def __enter__(self) -> "Table":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
