"""NGramStore: sorted, block-compressed on-disk n-gram tables + query engine.

The paper computes n-gram statistics as a batch MapReduce job; this
subsystem is the *serving* half the ROADMAP's north star needs.  A counting
run's output is range-partitioned and sorted by a total-order-sort
MapReduce job (:mod:`repro.ngramstore.build`), each partition is written as
an immutable, block-compressed table (:mod:`repro.ngramstore.table`, format
in :mod:`repro.ngramstore.format`), and :class:`NGramStore`
(:mod:`repro.ngramstore.reader`) serves point/prefix/top-k queries over the
partitions with seek-based block reads and an LRU block cache — the
SSTable pattern that lets statistics far larger than RAM be queried with a
bounded memory footprint.

On top of the store sits the serving tier, unified behind one query
contract — :class:`StoreAPI` (:mod:`repro.ngramstore.api`), implemented
by the local store, both remote clients, and both distributed topologies:
:class:`NGramStoreServer`/:class:`StoreClient`
(:mod:`repro.ngramstore.server`) speak a newline-delimited JSON socket
protocol, :class:`NGramStoreHTTPServer`/:class:`HttpStoreClient`
(:mod:`repro.ngramstore.http`) expose the same engine over REST,
:class:`ReplicaPool`/:class:`ShardRouter`/:class:`ShardView`
(:mod:`repro.ngramstore.router`) scale reads across replicated and
range-sharded deployments, and :func:`merge_stores`
(:mod:`repro.ngramstore.merge`) compacts several stores into one with a
k-way merge of their sorted tables — exact at any τ thanks to per-store
residual sidecar tables.  :mod:`repro.ngramstore.analytics` reuses the
same ordered co-scan for cross-store analytics: :func:`diff_stores` /
:func:`intersect_stores` (and their streaming ``*_records`` twins) compare
two stores' exact tables and can write the result as a new queryable
store.  :mod:`repro.ngramstore.lsm` builds the
incremental-ingestion tier on top: :class:`LSMStore` manages ordered store
generations (``repro ingest`` / ``repro compact``) and
:class:`GenerationView` serves the live generations as one ``StoreAPI``,
so a store can absorb a rolling corpus while it is being queried.
"""

from repro.ngramstore.analytics import (
    diff_records,
    diff_stores,
    intersect_records,
    intersect_stores,
)
from repro.ngramstore.api import (
    DEFAULT_COMPLETE_K,
    Completion,
    NGramRecord,
    QueryEngine,
    StoreAPI,
    complete_scan,
)
from repro.ngramstore.build import (
    RangePartitioner,
    build_store,
    load_manifest,
    plan_boundaries,
    sample_keys,
    total_order_sort_job,
)
from repro.ngramstore.http import HttpStoreClient, NGramStoreHTTPServer
from repro.ngramstore.loadgen import LoadgenConfig, SLOTargets, check_slos, run_loadgen
from repro.ngramstore.lsm import GenerationView, LSMStore, is_lsm_dir, open_store_auto
from repro.ngramstore.merge import merge_stores
from repro.ngramstore.reader import NGramStore, StoreStatistics
from repro.ngramstore.router import ReplicaPool, ShardRouter, ShardView
from repro.ngramstore.server import NGramStoreServer, StoreClient
from repro.ngramstore.table import BlockCache, Table, TableWriter, TopKAccumulator

__all__ = [
    "BlockCache",
    "Completion",
    "DEFAULT_COMPLETE_K",
    "GenerationView",
    "HttpStoreClient",
    "LSMStore",
    "LoadgenConfig",
    "NGramRecord",
    "NGramStore",
    "NGramStoreHTTPServer",
    "NGramStoreServer",
    "QueryEngine",
    "RangePartitioner",
    "ReplicaPool",
    "ShardRouter",
    "SLOTargets",
    "ShardView",
    "StoreAPI",
    "StoreClient",
    "StoreStatistics",
    "Table",
    "TableWriter",
    "TopKAccumulator",
    "build_store",
    "check_slos",
    "complete_scan",
    "diff_records",
    "diff_stores",
    "intersect_records",
    "intersect_stores",
    "is_lsm_dir",
    "load_manifest",
    "merge_stores",
    "open_store_auto",
    "run_loadgen",
    "plan_boundaries",
    "sample_keys",
    "total_order_sort_job",
]
