"""NGramStore: sorted, block-compressed on-disk n-gram tables + query engine.

The paper computes n-gram statistics as a batch MapReduce job; this
subsystem is the *serving* half the ROADMAP's north star needs.  A counting
run's output is range-partitioned and sorted by a total-order-sort
MapReduce job (:mod:`repro.ngramstore.build`), each partition is written as
an immutable, block-compressed table (:mod:`repro.ngramstore.table`, format
in :mod:`repro.ngramstore.format`), and :class:`NGramStore`
(:mod:`repro.ngramstore.reader`) serves point/prefix/top-k queries over the
partitions with seek-based block reads and an LRU block cache — the
SSTable pattern that lets statistics far larger than RAM be queried with a
bounded memory footprint.
"""

from repro.ngramstore.build import (
    RangePartitioner,
    build_store,
    load_manifest,
    plan_boundaries,
    sample_keys,
    total_order_sort_job,
)
from repro.ngramstore.reader import NGramStore, StoreStatistics
from repro.ngramstore.table import BlockCache, Table, TableWriter

__all__ = [
    "BlockCache",
    "NGramStore",
    "RangePartitioner",
    "StoreStatistics",
    "Table",
    "TableWriter",
    "build_store",
    "load_manifest",
    "plan_boundaries",
    "sample_keys",
    "total_order_sort_job",
]
