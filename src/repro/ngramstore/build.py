"""Building a store with a total-order-sort MapReduce job.

Hadoop's ``TotalOrderPartitioner`` pattern, reproduced on this engine: the
input dataset's keys are *sampled* to estimate the key distribution, the
sample yields ``R - 1`` range-partition boundaries, and an identity
map/reduce job with a :class:`RangePartitioner` routes every record to the
partition owning its key range.  The shuffle sorts within each partition
(natural tuple order), so the job's reduce outputs are ``R`` sorted runs
whose ranges are disjoint and ordered — partition ``i``'s largest key sorts
before partition ``i + 1``'s smallest.  Each partition is then streamed
into one immutable table file, and the boundaries are persisted in the
store manifest so the reader can route queries the same way the build
routed records.  At no point is the full record set sorted (or even held)
in the launcher's memory: sampling streams, the job streams under the
runner's materialisation policy, and table writing streams per partition.
"""

from __future__ import annotations

import json
import os
import shutil
from bisect import bisect_right
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.config import ExecutionConfig, StoreConfig
from repro.exceptions import StoreError
from repro.mapreduce.backends import make_runner
from repro.mapreduce.dataset import Dataset
from repro.mapreduce.job import IdentityMapper, JobSpec, Partitioner, Reducer, TaskContext
from repro.mapreduce.pipeline import JobPipeline
from repro.ngramstore.table import TableWriter

Record = Tuple[Any, Any]

#: Manifest filename inside a store directory.
MANIFEST_FILENAME = "store.json"

#: Vocabulary filename inside a store directory (same layout as a corpus
#: directory, so the file is readable by the existing corpus tooling).
DICTIONARY_FILENAME = "dictionary.txt"

#: Table filename pattern, one file per range partition.
PARTITION_PATTERN = "part-{index:05d}.ngt"

#: Subdirectory holding a store's residual sidecar table — itself a full
#: store (manifest + partition tables, same boundaries as the main store)
#: whose records are the keys counted *below* the main store's τ, i.e.
#: counts in ``[1, τ)``.  Main + residual together are the exact full count
#: table, which is what makes k-way merge exact at any τ (a key under τ in
#: every shard can still cross τ in the union).
RESIDUAL_DIRNAME = "residual"

#: Manifest format version.
MANIFEST_VERSION = 1

#: Keys sampled from the input when planning partition boundaries.
DEFAULT_SAMPLE_SIZE = 1024


class RangePartitioner(Partitioner):
    """Routes keys to range partitions via sorted boundary keys.

    Partition ``i`` owns the keys ``k`` with ``boundaries[i-1] <= k <
    boundaries[i]`` (open-ended at both extremes); ``len(boundaries) + 1``
    partitions exist.  The object is picklable, so process backends ship it
    to workers like any other job component.
    """

    def __init__(self, boundaries: Iterable[Tuple]) -> None:
        self.boundaries = tuple(boundaries)
        if any(
            not self.boundaries[index] < self.boundaries[index + 1]
            for index in range(len(self.boundaries) - 1)
        ):
            raise StoreError("range partition boundaries must be strictly increasing")

    @property
    def num_partitions(self) -> int:
        return len(self.boundaries) + 1

    def partition(self, key: Any, num_partitions: int) -> int:
        if num_partitions != self.num_partitions:
            raise StoreError(
                f"range partitioner built for {self.num_partitions} partitions "
                f"used with num_reducers={num_partitions}"
            )
        return bisect_right(self.boundaries, key)


class SortedRunReducer(Reducer):
    """Forwards each key's single value; duplicate keys are a build error.

    The reducer sees keys in sorted order, so its emissions are exactly the
    partition's sorted run.  Store records map one key to one value; a key
    arriving with several values means the input was not aggregated
    (e.g. raw map output instead of counted statistics), which would
    silently drop data if forwarded — fail loudly instead.
    """

    def reduce(self, key: Any, values: Iterable[Any], context: TaskContext) -> None:
        values = list(values)
        if len(values) != 1:
            raise StoreError(
                f"duplicate key {key!r} in store build input ({len(values)} values); "
                "store inputs must map each n-gram to exactly one value"
            )
        context.emit(key, values[0])


def sample_keys(dataset: Dataset, sample_size: int = DEFAULT_SAMPLE_SIZE) -> List[Any]:
    """Evenly strided key sample of a dataset (deterministic, streaming).

    Every ``ceil(n / sample_size)``-th key is taken during one pass, so the
    sample spans the whole dataset without materialising it and without
    randomness — rebuilding a store from the same input yields the same
    boundaries, hence byte-identical partitions.
    """
    if sample_size < 1:
        raise StoreError(f"sample_size must be >= 1, got {sample_size}")
    total = dataset.num_records
    if total == 0:
        return []
    stride = max(1, -(-total // sample_size))  # ceil division
    sample: List[Any] = []
    for position, (key, _) in enumerate(dataset.iter_records()):
        if position % stride == 0:
            sample.append(key)
    return sample


def plan_boundaries(sample: List[Any], num_partitions: int) -> List[Any]:
    """Quantile boundaries splitting a key sample into ``num_partitions`` ranges.

    Duplicates are dropped, so a skewed sample yields fewer boundaries
    (hence fewer non-empty partitions) rather than empty ranges.
    """
    if num_partitions < 1:
        raise StoreError(f"num_partitions must be >= 1, got {num_partitions}")
    if num_partitions == 1 or not sample:
        return []
    ordered = sorted(sample)
    boundaries: List[Any] = []
    for index in range(1, num_partitions):
        candidate = ordered[(index * len(ordered)) // num_partitions]
        if not boundaries or boundaries[-1] < candidate:
            boundaries.append(candidate)
    return boundaries


def total_order_sort_job(
    name: str, boundaries: List[Any], num_map_tasks: Optional[int] = None
) -> JobSpec:
    """The identity job whose shuffle produces ordered, sorted partitions."""
    partitioner = RangePartitioner(boundaries)
    return JobSpec(
        name=name,
        mapper_factory=IdentityMapper,
        reducer_factory=SortedRunReducer,
        partitioner=partitioner,
        num_reducers=partitioner.num_partitions,
        num_map_tasks=num_map_tasks,
    )


def _key_to_json(key: Any) -> List[Any]:
    return list(key)


def _json_to_key(data: Iterable[Any]) -> Tuple:
    return tuple(data)


def clear_store_dir(store_dir: str) -> None:
    """Prepare ``store_dir`` for a (re)build: drop manifest and tables.

    The manifest goes *first*, and the old tables with it: a crash mid-build
    then leaves a directory without a manifest — which refuses to open —
    instead of an old manifest routing queries into new partition files, and
    a rebuild with fewer partitions leaves no orphan tables behind.
    """
    os.makedirs(store_dir, exist_ok=True)
    manifest_path = os.path.join(store_dir, MANIFEST_FILENAME)
    if os.path.exists(manifest_path):
        os.remove(manifest_path)
    residual_path = os.path.join(store_dir, RESIDUAL_DIRNAME)
    if os.path.isdir(residual_path):
        shutil.rmtree(residual_path)
    for name in sorted(os.listdir(store_dir)):
        if name.endswith(".ngt"):
            os.remove(os.path.join(store_dir, name))


def write_dictionary(store_dir: str, lines: Iterable[str]) -> str:
    """Persist vocabulary ``lines`` next to the tables; returns the path."""
    path = os.path.join(store_dir, DICTIONARY_FILENAME)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return path


def write_store_manifest(
    store_dir: str,
    *,
    codec: str,
    records_per_block: int,
    boundaries: List[Any],
    partitions: List[Dict[str, Any]],
    has_vocabulary: bool,
    metadata: Optional[Dict[str, Any]] = None,
    residual: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Write the store manifest (shared by the build job and the store merge).

    ``residual`` describes the store's residual sidecar table (see
    :data:`RESIDUAL_DIRNAME`) when one was written — e.g. ``{"directory":
    "residual", "below": 3, "num_records": 17}``.  Old readers ignore the
    extra manifest entry, so the manifest version is unchanged.
    """
    manifest = {
        "version": MANIFEST_VERSION,
        "codec": codec,
        "records_per_block": records_per_block,
        "num_partitions": len(partitions),
        "boundaries": [_key_to_json(boundary) for boundary in boundaries],
        "partitions": partitions,
        "num_records": sum(entry["num_records"] for entry in partitions),
        "serialized_bytes": sum(entry["serialized_bytes"] for entry in partitions),
        "has_vocabulary": has_vocabulary,
        "metadata": dict(metadata) if metadata else {},
    }
    if residual is not None:
        manifest["residual"] = dict(residual)
    with open(os.path.join(store_dir, MANIFEST_FILENAME), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return manifest


def _check_splittable_count(key: Any, value: Any, threshold: int) -> None:
    """A record routed to main-vs-residual must carry a real count ``>= 1``.

    Splitting compares the value against τ, so a non-integer (or a ``bool``,
    which would compare as 0/1) would silently land records in the wrong
    table — refuse instead.  Counts below 1 mean the input was already
    τ-filtered, so the residual would be incomplete and every later merge
    silently wrong.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise StoreError(
            f"residual split needs integer counts: key {key!r} has "
            f"{type(value).__name__} value {value!r} (building with "
            f"min_frequency={threshold} requires a raw count table)"
        )
    if value < 1:
        raise StoreError(
            f"residual split saw count {value} for key {key!r}; counts must be "
            ">= 1 — was the input already frequency-filtered?"
        )


def build_store(
    records: Any,
    store_dir: str,
    store: Optional[StoreConfig] = None,
    execution: Optional[ExecutionConfig] = None,
    pipeline: Optional[JobPipeline] = None,
    metadata: Optional[Dict[str, Any]] = None,
    vocabulary: Optional[Any] = None,
    name: str = "ngramstore",
) -> str:
    """Build an on-disk n-gram store from ``(ngram, value)`` records.

    ``records`` is a :class:`~repro.mapreduce.dataset.Dataset` (e.g. a
    counting job's ``output_dataset``) or any iterable of records; iterables
    are materialised under the runner's policy (sharded on-disk files in
    disk mode), so the build is out-of-core end to end when the execution
    configuration is.  ``pipeline`` lets a caller supply the job pipeline
    (for tests that inspect the sort job); by default a private pipeline is
    created from ``execution`` so the build does not pollute a counting
    run's measured counters.  ``vocabulary`` (any object with ``to_lines``)
    is persisted alongside the tables so queries can speak surface terms.

    When ``store.min_frequency`` (τ) is above 1, the input must be the
    *unfiltered* (τ=1) count table: records with counts ``>= τ`` become the
    main store and the rest — counts in ``[1, τ)`` — are written to the
    residual sidecar store under ``store_dir/residual/``, with the same
    partition boundaries.  Main + residual together remain the exact full
    count table, so :func:`~repro.ngramstore.merge.merge_stores` can merge
    such stores exactly at any τ without recounting the corpus.

    Returns ``store_dir``.
    """
    store = store if store is not None else StoreConfig()
    clear_store_dir(store_dir)
    if pipeline is None:
        runner = make_runner(execution)
        pipeline = JobPipeline(runner=runner)

    if isinstance(records, Dataset):
        dataset = records
    else:
        dataset = pipeline.materialize_input(iter(records), name=f"{name}-input")

    boundaries = plan_boundaries(
        sample_keys(dataset, store.sample_size), store.num_partitions
    )
    job = total_order_sort_job(f"{name}-total-order-sort", boundaries)
    result = pipeline.run_job(job, dataset)

    threshold = store.min_frequency
    residual_dir = os.path.join(store_dir, RESIDUAL_DIRNAME)
    if threshold > 1:
        os.makedirs(residual_dir, exist_ok=True)

    def _partition_entry(path: str, writer: TableWriter) -> Dict[str, Any]:
        return {
            "file": os.path.basename(path),
            "num_records": writer.num_records,
            "serialized_bytes": writer.serialized_bytes,
            "file_bytes": os.path.getsize(path),
        }

    partitions: List[Dict[str, Any]] = []
    residual_partitions: List[Dict[str, Any]] = []
    for index, partition in enumerate(result.partition_datasets):
        path = os.path.join(store_dir, PARTITION_PATTERN.format(index=index))
        with TableWriter(
            path,
            codec=store.codec,
            records_per_block=store.records_per_block,
            metadata={"partition": index},
            bloom_bits_per_key=store.bloom_bits_per_key,
        ) as writer:
            if threshold <= 1:
                writer.extend(partition.iter_records())
            else:
                residual_path = os.path.join(
                    residual_dir, PARTITION_PATTERN.format(index=index)
                )
                with TableWriter(
                    residual_path,
                    codec=store.codec,
                    records_per_block=store.records_per_block,
                    metadata={"partition": index, "residual": True},
                    bloom_bits_per_key=store.bloom_bits_per_key,
                ) as residual_writer:
                    for key, value in partition.iter_records():
                        _check_splittable_count(key, value, threshold)
                        if value >= threshold:
                            writer.append(key, value)
                        else:
                            residual_writer.append(key, value)
                residual_partitions.append(_partition_entry(residual_path, residual_writer))
        partitions.append(_partition_entry(path, writer))
    result.release_output()

    has_vocabulary = vocabulary is not None
    if has_vocabulary:
        write_dictionary(store_dir, vocabulary.to_lines())

    residual_entry: Optional[Dict[str, Any]] = None
    if threshold > 1:
        metadata = dict(metadata) if metadata else {}
        metadata["min_frequency"] = threshold
        write_store_manifest(
            residual_dir,
            codec=store.codec,
            records_per_block=store.records_per_block,
            boundaries=boundaries,
            partitions=residual_partitions,
            has_vocabulary=False,
            metadata={"residual": True, "residual_below": threshold, "min_frequency": 1},
        )
        residual_entry = {
            "directory": RESIDUAL_DIRNAME,
            "below": threshold,
            "num_records": sum(entry["num_records"] for entry in residual_partitions),
        }

    write_store_manifest(
        store_dir,
        codec=store.codec,
        records_per_block=store.records_per_block,
        boundaries=boundaries,
        partitions=partitions,
        has_vocabulary=has_vocabulary,
        metadata=metadata,
        residual=residual_entry,
    )
    return store_dir


def load_manifest(store_dir: str) -> Dict[str, Any]:
    """Read and validate a store directory's manifest."""
    path = os.path.join(store_dir, MANIFEST_FILENAME)
    if not os.path.exists(path):
        raise StoreError(f"no store manifest ({MANIFEST_FILENAME}) in {store_dir!r}")
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise StoreError(
            f"unsupported store manifest version {version!r} (expected {MANIFEST_VERSION})"
        )
    return manifest


def manifest_boundaries(manifest: Dict[str, Any]) -> List[Tuple]:
    """The manifest's partition boundaries as key tuples."""
    return [_json_to_key(boundary) for boundary in manifest["boundaries"]]


def iter_statistics_records(statistics: Any) -> Iterator[Record]:
    """Adapt an :class:`~repro.ngrams.statistics.NGramStatistics` to records."""
    return iter(statistics.items())
