"""Binary wire protocol of the n-gram store query server.

The server's original wire format is newline-delimited JSON: one request
object per line, one response object per line.  That is robust and
debuggable but pays JSON's text overhead on every record and one full
round-trip per request.  This module is the binary alternative the server
and :class:`~repro.ngramstore.server.StoreClient` negotiate on connect:

* **Framing** — every message is one varint-length-prefixed byte frame,
  the exact framing of :func:`repro.mapreduce.serialization.write_frame`
  that spill files and store data blocks already use.  ``MAX_*_BYTES``
  caps reject hostile lengths before any allocation.
* **Payload** — a tagged binary encoding of the *same* JSON-able
  request/response dicts the JSON protocol carries (see
  :class:`~repro.ngramstore.api.QueryEngine`), so both protocols are thin
  shells around one transport-independent engine and answers are
  value-identical by construction.

Value encoding, one tag byte per value::

    0x00 null            0x03 non-negative int: varint(value)
    0x01 true            0x04 negative int:     varint(-1 - value)
    0x02 false           0x05 float:            8 bytes little-endian IEEE 754
    0x06 str:   varint(len) + UTF-8 bytes
    0x07 list:  varint(count) + items          (tuples encode as lists,
    0x08 dict:  varint(count) + key/value      matching JSON semantics)
                pairs, keys always str

Integers are arbitrary precision (decoded with ``max_bits=None``) because
JSON's are — an n-gram count cannot overflow the protocol.

**Negotiation** (see :mod:`repro.ngramstore.server`): a binary-capable
client opens with the ``NGWIRE1`` magic line, terminated by ``\\n`` so a
legacy JSON server parses it as one (malformed) JSON request and answers
with an error line instead of hanging.  A binary-capable server answers
the magic with a framed hello dict; the client peeks the first response
byte — ``{`` (0x7b) can only be a legacy server's JSON error line, any
other byte is the hello frame's varint length prefix (the hello is kept
far shorter than 0x7b bytes, which :func:`encode_hello` asserts).
"""

from __future__ import annotations

import struct
from typing import Any, BinaryIO, Optional, Tuple

from repro.exceptions import SerializationError
from repro.mapreduce.serialization import read_frame
from repro.util.varint import decode_varint, encode_varint

#: Magic line a binary-capable client sends on connect (newline-terminated
#: on the wire so legacy JSON servers answer in-stream instead of hanging).
WIRE_MAGIC = b"NGWIRE1"

#: Version negotiated in the server's hello frame (bump on incompatible
#: changes to the value encoding or the framing).
WIRE_VERSION = 1

#: The byte a legacy JSON server's in-stream error line starts with; the
#: hello frame's first byte must always differ (see :func:`encode_hello`).
_JSON_OBJECT_OPEN = 0x7B  # ord("{")

_TAG_NULL = 0x00
_TAG_TRUE = 0x01
_TAG_FALSE = 0x02
_TAG_INT_POS = 0x03
_TAG_INT_NEG = 0x04
_TAG_FLOAT = 0x05
_TAG_STR = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08

_FLOAT_STRUCT = struct.Struct("<d")


def _encode_value(obj: Any, out: bytearray) -> None:
    if obj is None:
        out.append(_TAG_NULL)
    elif obj is True:
        out.append(_TAG_TRUE)
    elif obj is False:
        out.append(_TAG_FALSE)
    elif isinstance(obj, int):
        if obj >= 0:
            out.append(_TAG_INT_POS)
            out.extend(encode_varint(obj))
        else:
            out.append(_TAG_INT_NEG)
            out.extend(encode_varint(-1 - obj))
    elif isinstance(obj, float):
        out.append(_TAG_FLOAT)
        out.extend(_FLOAT_STRUCT.pack(obj))
    elif isinstance(obj, str):
        encoded = obj.encode("utf-8")
        out.append(_TAG_STR)
        out.extend(encode_varint(len(encoded)))
        out.extend(encoded)
    elif isinstance(obj, (list, tuple)):
        out.append(_TAG_LIST)
        out.extend(encode_varint(len(obj)))
        for item in obj:
            _encode_value(item, out)
    elif isinstance(obj, dict):
        out.append(_TAG_DICT)
        out.extend(encode_varint(len(obj)))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise SerializationError(
                    f"wire dict keys must be str, got {type(key).__name__}"
                )
            encoded = key.encode("utf-8")
            out.extend(encode_varint(len(encoded)))
            out.extend(encoded)
            _encode_value(value, out)
    else:
        raise SerializationError(
            f"cannot wire-encode object of type {type(obj).__name__}"
        )


def _decode_value(data: Any, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise SerializationError("truncated wire value: missing tag byte")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT_POS:
        return decode_varint(data, offset, max_bits=None)
    if tag == _TAG_INT_NEG:
        magnitude, offset = decode_varint(data, offset, max_bits=None)
        return -1 - magnitude, offset
    if tag == _TAG_FLOAT:
        if offset + 8 > len(data):
            raise SerializationError("truncated wire value: short float")
        return _FLOAT_STRUCT.unpack_from(data, offset)[0], offset + 8
    if tag == _TAG_STR:
        length, offset = decode_varint(data, offset)
        if offset + length > len(data):
            raise SerializationError("truncated wire value: short string")
        return str(bytes(data[offset : offset + length]), "utf-8"), offset + length
    if tag == _TAG_LIST:
        count, offset = decode_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_value(data, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        count, offset = decode_varint(data, offset)
        result = {}
        for _ in range(count):
            length, offset = decode_varint(data, offset)
            if offset + length > len(data):
                raise SerializationError("truncated wire value: short dict key")
            key = str(bytes(data[offset : offset + length]), "utf-8")
            offset += length
            result[key], offset = _decode_value(data, offset)
        return result, offset
    raise SerializationError(f"unknown wire tag byte 0x{tag:02x}")


def encode_value(obj: Any) -> bytes:
    """Encode one JSON-able value (without framing)."""
    out = bytearray()
    _encode_value(obj, out)
    return bytes(out)


def decode_value(data: Any) -> Any:
    """Invert :func:`encode_value`; rejects trailing garbage."""
    value, offset = _decode_value(data, 0)
    if offset != len(data):
        raise SerializationError(
            f"wire value decoded at {offset} bytes but frame holds {len(data)}"
        )
    return value


def encode_message(obj: Any) -> bytes:
    """One ready-to-send frame: varint length prefix + encoded value."""
    payload = encode_value(obj)
    return encode_varint(len(payload)) + payload


def read_message(reader: BinaryIO, max_bytes: Optional[int] = None) -> Optional[Any]:
    """Read and decode one frame; ``None`` at a clean end-of-stream.

    Truncated frames, oversized frames and undecodable payloads all raise
    :class:`~repro.exceptions.SerializationError` — the caller (server or
    client) treats any of them as a broken peer and closes the connection,
    exactly as the JSON protocol treats an oversized or unterminated line.
    """
    payload = read_frame(reader, max_bytes)
    if payload is None:
        return None
    return decode_value(payload)


def encode_hello() -> bytes:
    """The framed hello a binary server answers the magic line with."""
    message = encode_message({"protocol": "binary", "version": WIRE_VERSION})
    # Auto-negotiating clients tell a binary server from a legacy JSON one
    # by this frame's first byte: anything but ``{`` means binary.  The
    # hello is tiny, so its one-byte varint length can never be 0x7b.
    if message[0] == _JSON_OBJECT_OPEN:
        raise SerializationError("hello frame collides with JSON negotiation byte")
    return message
