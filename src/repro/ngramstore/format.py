"""On-disk format of one n-gram table file.

A table is an immutable, sorted run of ``(ngram, value)`` records — the
SSTable idiom: batch jobs write tables once, the serving layer reads them
with seeks instead of loading them.  The layout is::

    +-----------------------------+ offset 0
    | header magic  ``NGSTORE1``  |
    +-----------------------------+
    | data block 0                |  varint-framed records
    | data block 1                |  (optionally codec-compressed)
    | ...                         |
    +-----------------------------+
    | block index                 |  pickled list of BlockHandle tuples
    +-----------------------------+
    | footer                      |  pickled metadata dict
    +-----------------------------+
    | footer offset (8 bytes LE)  |
    | trailer magic ``NGSTORE1``  |
    +-----------------------------+ end of file

Each data block is the concatenated varint-length-prefixed record frames of
:mod:`repro.mapreduce.serialization` (the same framing shards and spill
files use), compressed as one unit by the table's codec — per-block
compression keeps random reads cheap (decompress one block, not the file)
while still exploiting redundancy between neighbouring keys.  The block
index records every block's first and last key, so a reader binary-searches
the index and touches exactly one block per point lookup.
"""

from __future__ import annotations

import io
import pickle
import zlib
from typing import Any, BinaryIO, Dict, List, NamedTuple, Tuple

from repro.exceptions import StoreError
from repro.mapreduce.serialization import read_framed_records, write_framed_record
from repro.util.codecs import Codec
from repro.util.varint import decode_varint

#: Magic bytes opening and closing every table file.
MAGIC = b"NGSTORE1"

#: Format version recorded in the footer (bump on incompatible changes).
FORMAT_VERSION = 1

#: Length of the fixed-size trailer: footer offset + magic.
TRAILER_LENGTH = 8 + len(MAGIC)

Record = Tuple[Any, Any]


class BlockHandle(NamedTuple):
    """Index entry locating one data block inside the table file.

    ``max_value`` is the block's largest *numeric* value (``None`` when the
    block holds non-numeric values, or in tables written before the summary
    existed — old indexes pickle as 5-tuples and load with the default).
    Frequency-ordered top-k uses it to skip blocks whose best possible
    record cannot beat the current heap floor.

    ``bloom`` is the block's Bloom filter over its keys, as the plain
    ``(num_bits, num_hashes, bits)`` spec of
    :class:`repro.util.bloom.BloomFilter` — ``None`` when filters were
    disabled at write time or the table predates them (old indexes pickle
    as 5- or 6-tuples and load with the default).  Point lookups consult it
    before touching the data block, so a guaranteed miss costs no block
    read at all.

    ``checksum`` is the CRC32 of the block's stored payload (the bytes on
    disk, after any codec compression) — ``None`` in tables written before
    checksums existed (old indexes pickle as 5-, 6-, or 7-tuples and load
    with the default).  Readers verify it before decoding a block, so a
    flipped bit surfaces as a :class:`~repro.exceptions.StoreError` naming
    the partition and block instead of silently wrong counts or an opaque
    unpickling crash.
    """

    first_key: Any
    last_key: Any
    offset: int
    length: int
    num_records: int
    max_value: Any = None
    bloom: Any = None
    checksum: Any = None


def block_checksum(payload: "bytes | memoryview") -> int:
    """CRC32 of a block's stored payload, normalised to an unsigned int."""
    return zlib.crc32(payload) & 0xFFFFFFFF


def encode_block(records: List[Record], codec: Codec) -> bytes:
    """Serialise one block of records (framed, then compressed as a unit)."""
    buffer = io.BytesIO()
    for key, value in records:
        write_framed_record(buffer, key, value)
    return codec.compress(buffer.getvalue())


def decode_block(payload: bytes, codec: Codec) -> List[Record]:
    """Invert :func:`encode_block`."""
    return list(read_framed_records(io.BytesIO(codec.decompress(payload))))


def decode_block_view(view: "memoryview") -> List[Record]:
    """Decode an *uncompressed* block straight from a byte buffer.

    The zero-copy twin of :func:`decode_block` for mmap-backed tables: the
    varint frame walk indexes the buffer in place and each record is
    unpickled from a ``memoryview`` slice, so no intermediate ``bytes``
    copy of the block payload is ever made.  Only valid for the ``none``
    codec — compressed blocks must be decompressed (a copy) first, which
    is why the table falls back to the file-I/O path for them.
    """
    records: List[Record] = []
    offset = 0
    end = len(view)
    while offset < end:
        length, offset = decode_varint(view, offset)
        if offset + length > end:
            raise StoreError(
                f"truncated record frame in block: frame of {length} bytes "
                f"at offset {offset} overruns the {end}-byte block"
            )
        records.append(pickle.loads(view[offset : offset + length]))
        offset += length
    return records


def write_index(handle: BinaryIO, index: List[BlockHandle]) -> Tuple[int, int]:
    """Append the block index; returns its ``(offset, length)``."""
    offset = handle.tell()
    payload = pickle.dumps([tuple(entry) for entry in index], protocol=pickle.HIGHEST_PROTOCOL)
    handle.write(payload)
    return offset, len(payload)


def write_footer(handle: BinaryIO, footer: Dict[str, Any]) -> None:
    """Append the footer dict and the fixed-size trailer."""
    offset = handle.tell()
    handle.write(pickle.dumps(footer, protocol=pickle.HIGHEST_PROTOCOL))
    handle.write(offset.to_bytes(8, "little"))
    handle.write(MAGIC)


def read_footer(handle: BinaryIO) -> Dict[str, Any]:
    """Read and validate the footer of an open table file."""
    handle.seek(0, io.SEEK_END)
    file_length = handle.tell()
    if file_length < len(MAGIC) + TRAILER_LENGTH:
        raise StoreError(f"table file too short ({file_length} bytes) to be a store table")
    handle.seek(0)
    if handle.read(len(MAGIC)) != MAGIC:
        raise StoreError("bad header magic: not an n-gram store table")
    handle.seek(file_length - TRAILER_LENGTH)
    trailer = handle.read(TRAILER_LENGTH)
    if trailer[8:] != MAGIC:
        raise StoreError("bad trailer magic: truncated or corrupt table file")
    footer_offset = int.from_bytes(trailer[:8], "little")
    if not len(MAGIC) <= footer_offset < file_length - TRAILER_LENGTH:
        raise StoreError(f"footer offset {footer_offset} outside the table file")
    handle.seek(footer_offset)
    try:
        footer = pickle.loads(handle.read(file_length - TRAILER_LENGTH - footer_offset))
    except Exception as exc:
        raise StoreError(f"cannot decode table footer: {exc}") from exc
    if not isinstance(footer, dict):
        raise StoreError(f"table footer is {type(footer).__name__}, expected dict")
    version = footer.get("version")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"unsupported table format version {version!r} (expected {FORMAT_VERSION})"
        )
    return footer


def read_index(handle: BinaryIO, footer: Dict[str, Any]) -> List[BlockHandle]:
    """Read the block index located by ``footer``."""
    handle.seek(footer["index_offset"])
    payload = handle.read(footer["index_length"])
    try:
        entries = pickle.loads(payload)
    except Exception as exc:
        raise StoreError(f"cannot decode table block index: {exc}") from exc
    return [BlockHandle(*entry) for entry in entries]
