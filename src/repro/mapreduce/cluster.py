"""Simulated cluster wallclock model.

The paper runs its experiments on a nine-worker Hadoop cluster and varies the
number of map/reduce *slots* (Section VII.H).  The in-process engine cannot
reproduce cluster wallclock directly, so this module provides an explicit
cost model: given the per-task metrics measured by the runner and a
:class:`~repro.config.ClusterConfig` describing slot counts and unit costs,
it computes a simulated wallclock per job and per pipeline.

The model captures the effects the paper discusses:

* a fixed per-job overhead (the "administrative fix cost" that penalises the
  multi-job APRIORI methods);
* map and reduce phases whose duration is the maximum over *waves* of tasks
  (``ceil(tasks / slots)`` waves), so adding slots shows diminishing returns
  once the number of waves stops shrinking;
* shuffle cost proportional to the bytes crossing the map/reduce boundary;
* sort cost proportional to ``n log n`` in the records each reduce task
  sorts — the term that separates NAIVE from SUFFIX-σ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.config import ClusterConfig
from repro.mapreduce.metrics import JobMetrics, TaskMetrics


@dataclass(frozen=True)
class PhaseEstimate:
    """Simulated duration of one phase (map or reduce) of one job."""

    phase: str
    num_tasks: int
    num_waves: int
    seconds: float


@dataclass(frozen=True)
class JobEstimate:
    """Simulated wallclock breakdown of one job."""

    job_name: str
    map_phase: PhaseEstimate
    reduce_phase: PhaseEstimate
    shuffle_seconds: float
    overhead_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.overhead_seconds
            + self.map_phase.seconds
            + self.shuffle_seconds
            + self.reduce_phase.seconds
        )


class ClusterCostModel:
    """Translates measured task metrics into simulated cluster wallclock."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config

    # ------------------------------------------------------------- per task
    def _map_task_cost(self, task: TaskMetrics) -> float:
        cost = self.config.task_overhead
        cost += task.input_records * self.config.per_record_map_cost
        cost += task.output_records * self.config.per_record_map_cost
        if task.sorted_records > 1:
            cost += (
                task.sorted_records
                * math.log2(task.sorted_records)
                * self.config.per_record_sort_cost
            )
        return cost

    def _reduce_task_cost(self, task: TaskMetrics) -> float:
        cost = self.config.task_overhead
        cost += task.input_records * self.config.per_record_reduce_cost
        cost += task.output_records * self.config.per_record_reduce_cost
        if task.sorted_records > 1:
            cost += (
                task.sorted_records
                * math.log2(task.sorted_records)
                * self.config.per_record_sort_cost
            )
        return cost

    # ------------------------------------------------------------ per phase
    def _phase_estimate(
        self, phase: str, task_costs: Sequence[float], slots: int
    ) -> PhaseEstimate:
        if not task_costs:
            return PhaseEstimate(phase=phase, num_tasks=0, num_waves=0, seconds=0.0)
        num_tasks = len(task_costs)
        num_waves = math.ceil(num_tasks / slots)
        # Tasks are scheduled longest-first onto ``slots`` workers (LPT rule);
        # the phase ends when the most loaded worker finishes.
        ordered = sorted(task_costs, reverse=True)
        worker_loads = [0.0] * min(slots, num_tasks)
        for cost in ordered:
            lightest = min(range(len(worker_loads)), key=worker_loads.__getitem__)
            worker_loads[lightest] += cost
        return PhaseEstimate(
            phase=phase,
            num_tasks=num_tasks,
            num_waves=num_waves,
            seconds=max(worker_loads),
        )

    # -------------------------------------------------------------- per job
    def estimate_job(self, metrics: JobMetrics) -> JobEstimate:
        """Simulated wallclock of one job under the configured cluster."""
        map_costs = [self._map_task_cost(task) for task in metrics.map_tasks]
        reduce_costs = [self._reduce_task_cost(task) for task in metrics.reduce_tasks]
        map_phase = self._phase_estimate("map", map_costs, self.config.map_slots)
        reduce_phase = self._phase_estimate("reduce", reduce_costs, self.config.reduce_slots)
        shuffle_bytes = sum(task.output_bytes for task in metrics.map_tasks)
        # Shuffle bandwidth is shared across reduce slots pulling in parallel.
        shuffle_seconds = (
            shuffle_bytes * self.config.per_byte_shuffle_cost / max(1, self.config.reduce_slots)
        )
        return JobEstimate(
            job_name=metrics.job_name,
            map_phase=map_phase,
            reduce_phase=reduce_phase,
            shuffle_seconds=shuffle_seconds,
            overhead_seconds=self.config.job_overhead,
        )

    def estimate_pipeline(self, job_metrics: Iterable[JobMetrics]) -> float:
        """Simulated wallclock of a whole pipeline (jobs run sequentially)."""
        return sum(self.estimate_job(metrics).total_seconds for metrics in job_metrics)


class SimulatedCluster:
    """Convenience wrapper pairing a cluster configuration with its model."""

    def __init__(self, config: ClusterConfig) -> None:
        self.config = config
        self.model = ClusterCostModel(config)

    @classmethod
    def with_slots(cls, slots: int, **overrides: float) -> "SimulatedCluster":
        """Create a cluster with the given number of map and reduce slots."""
        return cls(ClusterConfig.with_slots(slots, **overrides))

    def wallclock(self, job_metrics: Iterable[JobMetrics]) -> float:
        """Simulated wallclock seconds for the given job metrics."""
        return self.model.estimate_pipeline(job_metrics)

    def job_estimates(self, job_metrics: Iterable[JobMetrics]) -> List[JobEstimate]:
        """Per-job simulated wallclock breakdowns."""
        return [self.model.estimate_job(metrics) for metrics in job_metrics]
