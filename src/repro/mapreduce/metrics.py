"""Per-task and per-job execution metrics.

These metrics are produced by the runner for every map and reduce task and
consumed by the simulated-cluster cost model (:mod:`repro.mapreduce.cluster`)
to derive wallclock estimates under a configurable number of map/reduce
slots — the quantity varied in the paper's resource-scaling experiment
(Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.util.metrics import MetricsRegistry, default_registry


@dataclass(frozen=True)
class TaskMetrics:
    """Work performed by a single map or reduce task.

    Attributes
    ----------
    task_type:
        ``"map"`` or ``"reduce"``.
    task_index:
        Index of the task within its phase.
    input_records / output_records:
        Key-value pairs consumed and produced by the task.
    output_bytes:
        Serialised size of the produced records (shuffle bytes for map tasks,
        job output bytes for reduce tasks).
    sorted_records:
        Records the framework sorted on behalf of this task (shuffle sort for
        reduce tasks, combiner pre-sort for map tasks).
    elapsed_seconds:
        Measured wallclock seconds the task took in-process.
    """

    task_type: str
    task_index: int
    input_records: int
    output_records: int
    output_bytes: int
    sorted_records: int = 0
    elapsed_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.task_type not in ("map", "reduce"):
            raise ValueError(f"task_type must be 'map' or 'reduce', got {self.task_type!r}")


@dataclass
class JobMetrics:
    """Aggregated metrics of one job run."""

    job_name: str
    map_tasks: List[TaskMetrics] = field(default_factory=list)
    reduce_tasks: List[TaskMetrics] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def num_map_tasks(self) -> int:
        return len(self.map_tasks)

    @property
    def num_reduce_tasks(self) -> int:
        return len(self.reduce_tasks)

    @property
    def map_output_records(self) -> int:
        return sum(task.output_records for task in self.map_tasks)

    @property
    def map_output_bytes(self) -> int:
        return sum(task.output_bytes for task in self.map_tasks)

    @property
    def reduce_output_records(self) -> int:
        return sum(task.output_records for task in self.reduce_tasks)


def publish_job_metrics(result: Any, registry: Optional[MetricsRegistry] = None) -> None:
    """Mirror one :class:`~repro.mapreduce.runner.JobResult` into a registry.

    Hadoop-style counters stay the measurement surface the experiment
    harness reads (they are what the paper reports); this adapter
    additionally folds each completed job into the process-wide metrics
    registry so a long pipeline run is observable from the same
    Prometheus exposition as the serving tier: jobs by name, per-job
    wallclock, and every counter as a labelled cumulative series.
    """
    registry = registry if registry is not None else default_registry()
    registry.counter(
        "mapreduce_jobs_total", "MapReduce jobs completed, by job name", labels=("job",)
    ).inc(job=result.job_name)
    registry.histogram(
        "mapreduce_job_seconds", "Per-job in-process wallclock in seconds"
    ).observe(result.elapsed_seconds)
    counters = registry.counter(
        "mapreduce_counters_total",
        "Hadoop-style job counters, by group and counter name",
        labels=("group", "counter"),
    )
    for group_name, values in result.counters.as_dict().items():
        for counter_name, value in values.items():
            if value > 0:
                counters.inc(value, group=group_name, counter=counter_name)
