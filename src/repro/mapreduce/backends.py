"""Runner backend selection.

Three execution backends implement the same :class:`JobResult` contract and
produce identical outputs and counter totals:

``local``
    Sequential in-process execution (:class:`LocalJobRunner`) — the default
    and the reference for correctness.
``threads``
    Concurrent tasks in a thread pool (:class:`ThreadPoolJobRunner`) —
    exercises the task model's parallelisability; speed-up is GIL-bound.
``processes``
    Tasks fanned out over worker processes
    (:class:`ProcessPoolJobRunner`) — true multi-core execution; job
    components must pickle.

:func:`make_runner` builds a runner from a
:class:`~repro.config.ExecutionConfig`, which is how the CLI's ``--runner``
/ ``--spill-threshold`` flags and the experiment harness reach the engine.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.config import RUNNER_NAMES, ExecutionConfig
from repro.exceptions import ConfigurationError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.parallel import ThreadPoolJobRunner
from repro.mapreduce.process import ProcessPoolJobRunner
from repro.mapreduce.runner import LocalJobRunner

#: Registry of runner classes by backend name (see ``ExecutionConfig.runner``).
RUNNER_BACKENDS: Dict[str, Type[LocalJobRunner]] = {
    "local": LocalJobRunner,
    "threads": ThreadPoolJobRunner,
    "processes": ProcessPoolJobRunner,
}

# ``ExecutionConfig`` validates against ``repro.config.RUNNER_NAMES`` (it
# cannot import this module without a cycle); fail loudly at import time if
# the two ever drift apart.
if set(RUNNER_BACKENDS) != set(RUNNER_NAMES):
    raise AssertionError(
        f"runner registry {sorted(RUNNER_BACKENDS)} out of sync with "
        f"repro.config.RUNNER_NAMES {sorted(RUNNER_NAMES)}"
    )


def make_runner(
    execution: Optional[ExecutionConfig] = None,
    cache: Optional[DistributedCache] = None,
    default_map_tasks: int = 4,
) -> LocalJobRunner:
    """Instantiate the runner described by ``execution``.

    ``None`` yields the default sequential runner.  ``max_workers`` is
    forwarded to the concurrent backends (each has its own default) and
    ignored by ``local``.
    """
    execution = execution if execution is not None else ExecutionConfig()
    try:
        runner_class = RUNNER_BACKENDS[execution.runner]
    except KeyError:
        known = ", ".join(sorted(RUNNER_BACKENDS))
        raise ConfigurationError(
            f"unknown runner backend {execution.runner!r} (known: {known})"
        ) from None
    kwargs = {
        "cache": cache,
        "default_map_tasks": default_map_tasks,
        "spill_threshold_bytes": execution.spill_threshold_bytes,
        "spill_threshold_records": execution.spill_threshold_records,
        "spill_dir": execution.spill_dir,
        "shard_codec": execution.shard_codec,
        "materialize": execution.materialize,
        "dataset_dir": execution.dataset_dir,
    }
    if runner_class is not LocalJobRunner and execution.max_workers is not None:
        kwargs["max_workers"] = execution.max_workers
    return runner_class(**kwargs)
