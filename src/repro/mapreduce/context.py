"""Task contexts passed to mappers, combiners and reducers.

A context exposes ``emit`` and the task's :class:`~repro.mapreduce.counters.Counters`
plus read-only access to the job-wide :class:`~repro.mapreduce.cache.DistributedCache`.

Emissions either buffer in the context (drained by the runner) or stream
through a *sink* — any object with ``append(key, value)``.  Sinks are how
the engine keeps task output off the heap: reduce output streams into shard
files, combiner-less map output straight into the shuffle, and map output
with a combiner into the bounded
:class:`~repro.mapreduce.shuffle.CombineBuffer`.  :class:`CountingSink` is
the shared adapter that forwards emissions to a callable while keeping the
record/byte accounting every runner reports.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.mapreduce.counters import Counters
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.serialization import record_size


class CountingSink:
    """Forwards emissions to ``output`` while counting records and bytes.

    ``serialized_bytes`` uses the compact-encoding :func:`record_size`
    accounting, matching the shuffle counters; ``output`` is any
    ``(key, value)`` callable (``shuffle.add``, a list collector, ...).
    """

    def __init__(self, output: Callable[[Any, Any], None]) -> None:
        self._output = output
        self.num_records = 0
        self.serialized_bytes = 0

    def append(self, key: Any, value: Any) -> None:
        self.serialized_bytes += record_size(key, value)
        self.num_records += 1
        self._output(key, value)


class TaskContext:
    """Execution context handed to user map/reduce code.

    Without a sink, the context buffers emitted records in :attr:`output`
    and the runner drains them (shuffling for map output, collecting for
    reduce output).  With a ``sink`` — any object with an
    ``append(key, value)`` method — every emission streams straight into it
    (a shard file, the shuffle), so the task never materialises its output.
    """

    def __init__(
        self,
        counters: Optional[Counters] = None,
        cache: Optional[DistributedCache] = None,
        sink: Optional[Any] = None,
    ) -> None:
        self.counters = counters if counters is not None else Counters()
        self.cache = cache if cache is not None else DistributedCache()
        self.sink = sink
        self.output: List[Tuple[Any, Any]] = []

    def emit(self, key: Any, value: Any) -> None:
        """Emit one key-value pair."""
        if self.sink is not None:
            self.sink.append(key, value)
        else:
            self.output.append((key, value))

    def increment(self, counter: str, amount: int = 1, group: str = "task") -> None:
        """Increment a user counter."""
        self.counters.increment(counter, amount, group=group)

    def drain(self) -> List[Tuple[Any, Any]]:
        """Return and clear the buffered output records."""
        records = self.output
        self.output = []
        return records
