"""Task contexts passed to mappers, combiners and reducers.

A context exposes ``emit`` and the task's :class:`~repro.mapreduce.counters.Counters`
plus read-only access to the job-wide :class:`~repro.mapreduce.cache.DistributedCache`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.mapreduce.counters import Counters
from repro.mapreduce.cache import DistributedCache


class TaskContext:
    """Execution context handed to user map/reduce code.

    Without a sink, the context buffers emitted records in :attr:`output`
    and the runner drains them (shuffling for map output, collecting for
    reduce output).  With a ``sink`` — any object with an
    ``append(key, value)`` method — every emission streams straight into it
    (a shard file, the shuffle), so the task never materialises its output.
    """

    def __init__(
        self,
        counters: Optional[Counters] = None,
        cache: Optional[DistributedCache] = None,
        sink: Optional[Any] = None,
    ) -> None:
        self.counters = counters if counters is not None else Counters()
        self.cache = cache if cache is not None else DistributedCache()
        self.sink = sink
        self.output: List[Tuple[Any, Any]] = []

    def emit(self, key: Any, value: Any) -> None:
        """Emit one key-value pair."""
        if self.sink is not None:
            self.sink.append(key, value)
        else:
            self.output.append((key, value))

    def increment(self, counter: str, amount: int = 1, group: str = "task") -> None:
        """Increment a user counter."""
        self.counters.increment(counter, amount, group=group)

    def drain(self) -> List[Tuple[Any, Any]]:
        """Return and clear the buffered output records."""
        records = self.output
        self.output = []
        return records
