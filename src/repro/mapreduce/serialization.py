"""Serialised-size accounting for map output records.

The paper reports "bytes transferred" between the map- and reduce-phase via
Hadoop's ``MAP_OUTPUT_BYTES`` counter.  In Hadoop that number is the size of
the serialised key-value pairs written by the mappers.  This module computes
the size each emitted Python object would occupy under the compact
serialisation described in Section V of the paper:

* integers (term identifiers, document identifiers, counts, positions) are
  variable-byte encoded;
* integer sequences (n-grams, posting positions) are length-prefixed
  sequences of varints;
* strings fall back to UTF-8;
* tuples/lists are the concatenation of their elements plus a length prefix.

The measurement is intentionally independent of how the in-process engine
actually passes objects around (plain Python references), because what
matters for the reproduction is the number of bytes a real Hadoop cluster
would have shuffled.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import SerializationError
from repro.util.varint import encoded_length


def serialized_size(obj: Any) -> int:
    """Return the number of bytes ``obj`` would occupy when serialised."""
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        # Zig-zag style treatment of negatives: one extra bit, same magnitude.
        return encoded_length(obj if obj >= 0 else (-obj << 1) | 1)
    if isinstance(obj, float):
        return 8
    if isinstance(obj, str):
        encoded = obj.encode("utf-8")
        return encoded_length(len(encoded)) + len(encoded)
    if isinstance(obj, bytes):
        return encoded_length(len(obj)) + len(obj)
    if isinstance(obj, (tuple, list)):
        return encoded_length(len(obj)) + sum(serialized_size(item) for item in obj)
    if isinstance(obj, dict):
        return encoded_length(len(obj)) + sum(
            serialized_size(key) + serialized_size(value) for key, value in obj.items()
        )
    if hasattr(obj, "serialized_size"):
        size = obj.serialized_size()
        if not isinstance(size, int) or size < 0:
            raise SerializationError(
                f"serialized_size() of {type(obj).__name__} returned invalid value {size!r}"
            )
        return size
    raise SerializationError(
        f"cannot compute serialised size of object of type {type(obj).__name__}"
    )


def record_size(key: Any, value: Any) -> int:
    """Serialised size of one key-value record at the shuffle boundary."""
    return serialized_size(key) + serialized_size(value)
