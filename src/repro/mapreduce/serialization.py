"""Serialisation of map output records: size accounting and spill framing.

The paper reports "bytes transferred" between the map- and reduce-phase via
Hadoop's ``MAP_OUTPUT_BYTES`` counter.  In Hadoop that number is the size of
the serialised key-value pairs written by the mappers.  This module computes
the size each emitted Python object would occupy under the compact
serialisation described in Section V of the paper:

* integers (term identifiers, document identifiers, counts, positions) are
  variable-byte encoded;
* integer sequences (n-grams, posting positions) are length-prefixed
  sequences of varints;
* strings fall back to UTF-8;
* tuples/lists are the concatenation of their elements plus a length prefix.

The measurement is intentionally independent of how the in-process engine
actually passes objects around (plain Python references), because what
matters for the reproduction is the number of bytes a real Hadoop cluster
would have shuffled.

The second half of the module is the on-disk record framing used by the
external shuffle (:mod:`repro.mapreduce.shuffle`): spilled runs are streams
of varint-length-prefixed pickled ``(key, value)`` frames, the same framing
idiom :mod:`repro.util.varint` uses for encoded corpus shards.
"""

from __future__ import annotations

import pickle
from typing import Any, BinaryIO, Iterator, Optional, Tuple

from repro.exceptions import SerializationError
from repro.util.varint import encode_varint, encoded_length, read_stream_varint


def serialized_size(obj: Any) -> int:
    """Return the number of bytes ``obj`` would occupy when serialised."""
    if obj is None:
        return 1
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        # Zig-zag style treatment of negatives: one extra bit, same magnitude.
        return encoded_length(obj if obj >= 0 else (-obj << 1) | 1)
    if isinstance(obj, float):
        return 8
    if isinstance(obj, str):
        encoded = obj.encode("utf-8")
        return encoded_length(len(encoded)) + len(encoded)
    if isinstance(obj, bytes):
        return encoded_length(len(obj)) + len(obj)
    if isinstance(obj, (tuple, list)):
        return encoded_length(len(obj)) + sum(serialized_size(item) for item in obj)
    if isinstance(obj, dict):
        return encoded_length(len(obj)) + sum(
            serialized_size(key) + serialized_size(value) for key, value in obj.items()
        )
    if hasattr(obj, "serialized_size"):
        size = obj.serialized_size()
        if not isinstance(size, int) or size < 0:
            raise SerializationError(
                f"serialized_size() of {type(obj).__name__} returned invalid value {size!r}"
            )
        return size
    raise SerializationError(
        f"cannot compute serialised size of object of type {type(obj).__name__}"
    )


def record_size(key: Any, value: Any) -> int:
    """Serialised size of one key-value record at the shuffle boundary."""
    return serialized_size(key) + serialized_size(value)


# --------------------------------------------------------- spill framing
def write_frame(handle: BinaryIO, payload: bytes) -> int:
    """Append one varint-length-prefixed byte frame; returns bytes written.

    The frame is ``varint(len(payload)) + payload`` — the length prefix of
    the spill files, the store's data blocks, and the binary wire protocol
    (:mod:`repro.ngramstore.wire`), so every layer shares one framing idiom.
    """
    header = encode_varint(len(payload))
    handle.write(header)
    handle.write(payload)
    return len(header) + len(payload)


def read_frame(handle: BinaryIO, max_bytes: Optional[int] = None) -> Optional[bytes]:
    """Read one byte frame; ``None`` at a clean end-of-stream.

    A stream ending mid-frame (or a frame longer than ``max_bytes``) raises
    — both can only mean truncation or a corrupt/hostile peer.
    """
    length, at_eof = read_stream_varint(handle)
    if at_eof:
        return None
    if max_bytes is not None and length > max_bytes:
        raise SerializationError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    payload = handle.read(length)
    if len(payload) != length:
        raise SerializationError(
            f"truncated frame: expected {length} bytes, got {len(payload)}"
        )
    return payload


def write_framed_record(handle: BinaryIO, key: Any, value: Any) -> int:
    """Append one varint-length-prefixed record frame to ``handle``.

    Returns the number of bytes written.  The payload is a pickled
    ``(key, value)`` tuple; pickling keeps the framing independent of the
    key/value types jobs emit (tuples of term identifiers, posting lists,
    counts, ...).
    """
    try:
        payload = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SerializationError(
            f"cannot spill record with key of type {type(key).__name__} and "
            f"value of type {type(value).__name__}: {exc}"
        ) from exc
    return write_frame(handle, payload)


def read_framed_records(handle: BinaryIO) -> Iterator[Tuple[Any, Any]]:
    """Iterate over the record frames of an open spill file."""
    while True:
        payload = read_frame(handle)
        if payload is None:
            return
        yield pickle.loads(payload)
