"""A multi-core job runner executing map and reduce tasks in worker processes.

:class:`ProcessPoolJobRunner` is the backend that actually escapes the GIL:
it serialises the :class:`~repro.mapreduce.job.JobSpec` (and the distributed
cache) with pickle once per job, fans the independent tasks of each phase
out over a :class:`concurrent.futures.ProcessPoolExecutor` and merges the
per-task :class:`~repro.mapreduce.counters.Counters` and
:class:`~repro.mapreduce.metrics.TaskMetrics` back in task order, so totals
are deterministic and byte-identical to the sequential runner.

Execution semantics (phase orchestration, streaming map results into the
shuffle, the failure contract) come from the shared
:class:`~repro.mapreduce.parallel.PooledJobRunner` template; this module
adds only the process-boundary concerns:

* everything crossing the boundary must pickle.  Job components that do not
  (lambda factories, closures) are rejected up front with a
  :class:`~repro.exceptions.MapReduceError` naming the offending component
  and the mapper/reducer class it produces;
* the job and cache are pickled once per run and the same bytes shipped to
  every task, keeping per-submit serialisation to a memcpy (tasks never
  publish to the cache; pipelines publish between jobs, in the parent);
* with a spill threshold set, *map* workers run a worker-local partial
  shuffle: emissions are partitioned and spilled as sorted runs inside the
  parent shuffle's run directory (same budget, varint spill codec and
  ``shard_codec`` stream compression), and only the run paths travel back
  as a :class:`~repro.mapreduce.shuffle.MapTaskSpills` — map output never
  crosses the process boundary as pickled record lists;
* likewise reduce workers receive only run *file paths* (see
  :class:`~repro.mapreduce.shuffle.PartitionInput`) and stream their
  partition from a fan-in-capped k-way merge, so neither the parent nor
  any worker ever materialises a spilled partition.

Without a spill budget the backend keeps its historical fully-in-memory
contract: map records are pickled back to the parent and counter sets stay
identical to the sequential runner's.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Optional, Tuple

from repro.exceptions import MapReduceError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobSpec
from repro.mapreduce.metrics import TaskMetrics
from repro.mapreduce.parallel import PooledJobRunner, TaskResult
from repro.mapreduce.runner import LocalJobRunner
from repro.mapreduce.shuffle import ExternalShuffle, MapTaskSpills

Record = Tuple[Any, Any]


@dataclass(frozen=True)
class MapSpillSpec:
    """How a map worker runs its worker-local partial shuffle.

    ``spill_dir`` is the parent shuffle's run directory: the worker's
    shuffle creates its own unique subdirectory inside it, so the parent's
    cleanup removes worker runs (including partial files left by a crashed
    task) together with its own.
    """

    spill_dir: str
    spill_threshold_bytes: Optional[int] = None
    spill_threshold_records: Optional[int] = None
    codec: str = "none"

#: Job attributes probed (in order) when the job fails to pickle, paired
#: with whether the attribute is a factory (called to learn the task class).
_JOB_COMPONENTS: Tuple[Tuple[str, bool], ...] = (
    ("mapper_factory", True),
    ("reducer_factory", True),
    ("combiner_factory", True),
    ("partitioner", False),
    ("sort_comparator", False),
)


def _run_task_in_worker(
    job_bytes: bytes,
    cache_bytes: bytes,
    phase: str,
    task_index: int,
    task_input: Any,
    reduce_sink: Optional[Any] = None,
    map_spill: Optional[MapSpillSpec] = None,
) -> Tuple[Any, TaskMetrics, Counters]:
    """Execute one map or reduce task inside a worker process.

    Reuses the sequential runner's task implementations verbatim, so task
    semantics cannot drift between backends.  With a
    :class:`~repro.mapreduce.dataset.ShardSink` the reduce output is framed
    to its shard file *in the worker* and only the shard description is
    pickled back — output record lists never cross the process boundary.
    With a :class:`MapSpillSpec` the same holds for map output: the task's
    emissions flow (through the combine buffer, when the job has one) into
    a worker-local :class:`~repro.mapreduce.shuffle.ExternalShuffle`, the
    remainder is force-spilled when the task ends, and only the run paths
    are pickled back.
    """
    job: JobSpec = pickle.loads(job_bytes)
    cache: DistributedCache = pickle.loads(cache_bytes)
    counters = Counters()
    if phase == "map":
        if map_spill is not None:
            runner = LocalJobRunner(
                cache=cache,
                spill_threshold_bytes=map_spill.spill_threshold_bytes,
                spill_threshold_records=map_spill.spill_threshold_records,
            )
            worker_shuffle = ExternalShuffle(
                job.partitioner,
                job.sort_comparator,
                job.num_reducers,
                spill_threshold_bytes=map_spill.spill_threshold_bytes,
                spill_threshold_records=map_spill.spill_threshold_records,
                spill_dir=map_spill.spill_dir,
                codec=map_spill.codec,
            )
            try:
                _, metrics = runner._run_map_task(
                    job, task_index, task_input, counters, shuffle=worker_shuffle
                )
                worker_shuffle.finalize(spill_remainder=True)
            except BaseException:
                # Remove this task's partial runs right away; the parent's
                # shuffle cleanup would catch them too, but a crashed task
                # should not leave debris even transiently.
                worker_shuffle.cleanup()
                raise
            spills = MapTaskSpills(
                run_paths=tuple(worker_shuffle.run_paths()),
                stats=worker_shuffle.stats,
            )
            return spills, metrics, counters
        runner = LocalJobRunner(cache=cache)
        records, metrics = runner._run_map_task(job, task_index, task_input, counters)
        return records, metrics, counters
    runner = LocalJobRunner(cache=cache)
    outcome, metrics = runner._run_reduce_task(
        job, task_index, task_input, counters, output_sink=reduce_sink
    )
    return outcome, metrics, counters


class ProcessPoolJobRunner(PooledJobRunner):
    """Drop-in replacement for :class:`LocalJobRunner` using worker processes.

    Parameters
    ----------
    max_workers:
        Number of worker processes (defaults to the machine's CPU count).
    mp_context:
        Optional multiprocessing start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default.
    """

    def __init__(
        self,
        cache: Optional[DistributedCache] = None,
        default_map_tasks: int = 4,
        max_workers: Optional[int] = None,
        spill_threshold_bytes: Optional[int] = None,
        spill_threshold_records: Optional[int] = None,
        spill_dir: Optional[str] = None,
        shard_codec: str = "none",
        mp_context: Optional[str] = None,
        materialize: str = "memory",
        dataset_dir: Optional[str] = None,
    ) -> None:
        super().__init__(
            cache=cache,
            default_map_tasks=default_map_tasks,
            spill_threshold_bytes=spill_threshold_bytes,
            spill_threshold_records=spill_threshold_records,
            spill_dir=spill_dir,
            shard_codec=shard_codec,
            materialize=materialize,
            dataset_dir=dataset_dir,
        )
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise MapReduceError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.mp_context = mp_context
        self._job_bytes: Optional[bytes] = None
        self._cache_bytes: Optional[bytes] = None
        self._map_spill: Optional[MapSpillSpec] = None

    @property
    def worker_side_shuffle(self) -> bool:
        """Whether map workers partition-and-spill locally (budget configured)."""
        return (
            self.spill_threshold_bytes is not None
            or self.spill_threshold_records is not None
        )

    # ---------------------------------------------------------- serialising
    def _describe_component(self, job: JobSpec, attribute: str, is_factory: bool) -> str:
        value = getattr(job, attribute)
        if is_factory:
            try:
                produced = type(value()).__name__
            except Exception:
                produced = "<unknown>"
            return f"{attribute} (producing {produced})"
        return f"{attribute} ({type(value).__name__})"

    def _pickle_job(self, job: JobSpec) -> bytes:
        """Serialise the job once, naming the unpicklable component on failure."""
        try:
            return pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            for attribute, is_factory in _JOB_COMPONENTS:
                value = getattr(job, attribute)
                if value is None:
                    continue
                try:
                    pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                except Exception as component_exc:
                    component = self._describe_component(job, attribute, is_factory)
                    raise MapReduceError(
                        f"job {job.name!r} cannot run on the process backend: "
                        f"{component} does not pickle: {component_exc}. Use a "
                        "module-level class or functools.partial instead of a "
                        "lambda or closure."
                    ) from component_exc
            raise MapReduceError(
                f"job {job.name!r} cannot run on the process backend: "
                f"the job does not pickle: {exc}"
            ) from exc

    def _pickle_cache(self, job: JobSpec) -> bytes:
        """Serialise the distributed cache once per job run."""
        try:
            return pickle.dumps(self.cache, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise MapReduceError(
                f"job {job.name!r} cannot run on the process backend: "
                f"the distributed cache does not pickle: {exc}"
            ) from exc

    # ------------------------------------------------------- template hooks
    def _prepare_job(self, job: JobSpec) -> None:
        self._job_bytes = self._pickle_job(job)
        self._cache_bytes = self._pickle_cache(job)

    def _prepare_shuffle(self, shuffle: Any) -> None:
        """Root the workers' partial shuffles under the parent's run dir."""
        if self.worker_side_shuffle:
            self._map_spill = MapSpillSpec(
                spill_dir=shuffle.ensure_run_dir(),
                spill_threshold_bytes=self.spill_threshold_bytes,
                spill_threshold_records=self.spill_threshold_records,
                codec=self.shard_codec,
            )
        else:
            self._map_spill = None

    def _make_phase_executor(self, num_tasks: int) -> Executor:
        workers = max(1, min(self.max_workers, num_tasks))
        context = get_context(self.mp_context) if self.mp_context else None
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)

    def _submit_task(
        self,
        executor: Executor,
        job: JobSpec,
        phase: str,
        task_index: int,
        task_input: Any,
        reduce_sink: Optional[Any] = None,
    ) -> Future[TaskResult]:
        assert self._job_bytes is not None and self._cache_bytes is not None
        return executor.submit(
            _run_task_in_worker,
            self._job_bytes,
            self._cache_bytes,
            phase,
            task_index,
            task_input,
            reduce_sink,
            self._map_spill if phase == "map" else None,
        )
