"""A multi-core job runner executing map and reduce tasks in worker processes.

:class:`ProcessPoolJobRunner` is the backend that actually escapes the GIL:
it serialises the :class:`~repro.mapreduce.job.JobSpec` (and the distributed
cache) with pickle once per job, fans the independent tasks of each phase
out over a :class:`concurrent.futures.ProcessPoolExecutor` and merges the
per-task :class:`~repro.mapreduce.counters.Counters` and
:class:`~repro.mapreduce.metrics.TaskMetrics` back in task order, so totals
are deterministic and byte-identical to the sequential runner.

Execution semantics (phase orchestration, streaming map results into the
shuffle, the failure contract) come from the shared
:class:`~repro.mapreduce.parallel.PooledJobRunner` template; this module
adds only the process-boundary concerns:

* everything crossing the boundary must pickle.  Job components that do not
  (lambda factories, closures) are rejected up front with a
  :class:`~repro.exceptions.MapReduceError` naming the offending component
  and the mapper/reducer class it produces;
* the job and cache are pickled once per run and the same bytes shipped to
  every task, keeping per-submit serialisation to a memcpy (tasks never
  publish to the cache; pipelines publish between jobs, in the parent);
* with a spill threshold set, reduce workers receive only run *file paths*
  (see :class:`~repro.mapreduce.shuffle.PartitionInput`) and stream their
  partition from a k-way merge, so neither the parent nor any worker ever
  materialises a spilled partition.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from multiprocessing import get_context
from typing import Any, Optional, Tuple

from repro.exceptions import MapReduceError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobSpec
from repro.mapreduce.metrics import TaskMetrics
from repro.mapreduce.parallel import PooledJobRunner, TaskResult
from repro.mapreduce.runner import LocalJobRunner

Record = Tuple[Any, Any]

#: Job attributes probed (in order) when the job fails to pickle, paired
#: with whether the attribute is a factory (called to learn the task class).
_JOB_COMPONENTS: Tuple[Tuple[str, bool], ...] = (
    ("mapper_factory", True),
    ("reducer_factory", True),
    ("combiner_factory", True),
    ("partitioner", False),
    ("sort_comparator", False),
)


def _run_task_in_worker(
    job_bytes: bytes,
    cache_bytes: bytes,
    phase: str,
    task_index: int,
    task_input: Any,
    reduce_sink: Optional[Any] = None,
) -> Tuple[Any, TaskMetrics, Counters]:
    """Execute one map or reduce task inside a worker process.

    Reuses the sequential runner's task implementations verbatim, so task
    semantics cannot drift between backends.  With a
    :class:`~repro.mapreduce.dataset.ShardSink` the reduce output is framed
    to its shard file *in the worker* and only the shard description is
    pickled back — output record lists never cross the process boundary.
    """
    job: JobSpec = pickle.loads(job_bytes)
    cache: DistributedCache = pickle.loads(cache_bytes)
    runner = LocalJobRunner(cache=cache)
    counters = Counters()
    if phase == "map":
        records, metrics = runner._run_map_task(job, task_index, task_input, counters)
        return records, metrics, counters
    outcome, metrics = runner._run_reduce_task(
        job, task_index, task_input, counters, output_sink=reduce_sink
    )
    return outcome, metrics, counters


class ProcessPoolJobRunner(PooledJobRunner):
    """Drop-in replacement for :class:`LocalJobRunner` using worker processes.

    Parameters
    ----------
    max_workers:
        Number of worker processes (defaults to the machine's CPU count).
    mp_context:
        Optional multiprocessing start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default.
    """

    def __init__(
        self,
        cache: Optional[DistributedCache] = None,
        default_map_tasks: int = 4,
        max_workers: Optional[int] = None,
        spill_threshold_bytes: Optional[int] = None,
        spill_threshold_records: Optional[int] = None,
        spill_dir: Optional[str] = None,
        shard_codec: str = "none",
        mp_context: Optional[str] = None,
        materialize: str = "memory",
        dataset_dir: Optional[str] = None,
    ) -> None:
        super().__init__(
            cache=cache,
            default_map_tasks=default_map_tasks,
            spill_threshold_bytes=spill_threshold_bytes,
            spill_threshold_records=spill_threshold_records,
            spill_dir=spill_dir,
            shard_codec=shard_codec,
            materialize=materialize,
            dataset_dir=dataset_dir,
        )
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise MapReduceError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.mp_context = mp_context
        self._job_bytes: Optional[bytes] = None
        self._cache_bytes: Optional[bytes] = None

    # ---------------------------------------------------------- serialising
    def _describe_component(self, job: JobSpec, attribute: str, is_factory: bool) -> str:
        value = getattr(job, attribute)
        if is_factory:
            try:
                produced = type(value()).__name__
            except Exception:
                produced = "<unknown>"
            return f"{attribute} (producing {produced})"
        return f"{attribute} ({type(value).__name__})"

    def _pickle_job(self, job: JobSpec) -> bytes:
        """Serialise the job once, naming the unpicklable component on failure."""
        try:
            return pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            for attribute, is_factory in _JOB_COMPONENTS:
                value = getattr(job, attribute)
                if value is None:
                    continue
                try:
                    pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                except Exception as component_exc:
                    component = self._describe_component(job, attribute, is_factory)
                    raise MapReduceError(
                        f"job {job.name!r} cannot run on the process backend: "
                        f"{component} does not pickle: {component_exc}. Use a "
                        "module-level class or functools.partial instead of a "
                        "lambda or closure."
                    ) from component_exc
            raise MapReduceError(
                f"job {job.name!r} cannot run on the process backend: "
                f"the job does not pickle: {exc}"
            ) from exc

    def _pickle_cache(self, job: JobSpec) -> bytes:
        """Serialise the distributed cache once per job run."""
        try:
            return pickle.dumps(self.cache, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise MapReduceError(
                f"job {job.name!r} cannot run on the process backend: "
                f"the distributed cache does not pickle: {exc}"
            ) from exc

    # ------------------------------------------------------- template hooks
    def _prepare_job(self, job: JobSpec) -> None:
        self._job_bytes = self._pickle_job(job)
        self._cache_bytes = self._pickle_cache(job)

    def _make_phase_executor(self, num_tasks: int) -> Executor:
        workers = max(1, min(self.max_workers, num_tasks))
        context = get_context(self.mp_context) if self.mp_context else None
        return ProcessPoolExecutor(max_workers=workers, mp_context=context)

    def _submit_task(
        self,
        executor: Executor,
        job: JobSpec,
        phase: str,
        task_index: int,
        task_input: Any,
        reduce_sink: Optional[Any] = None,
    ) -> Future[TaskResult]:
        assert self._job_bytes is not None and self._cache_bytes is not None
        return executor.submit(
            _run_task_in_worker,
            self._job_bytes,
            self._cache_bytes,
            phase,
            task_index,
            task_input,
            reduce_sink,
        )
