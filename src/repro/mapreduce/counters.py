"""Hadoop-style counters.

Counters are grouped (e.g. the built-in ``task`` group holds
``MAP_OUTPUT_RECORDS`` and ``MAP_OUTPUT_BYTES``); jobs and pipelines expose
aggregated counters so that experiments can read off exactly the numbers the
paper reports.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Mapping, Tuple

#: Built-in counter group used by the engine itself.
TASK_GROUP = "task"

#: Number of key-value pairs emitted by all map tasks (pre-combiner), i.e.
#: Hadoop's ``MAP_OUTPUT_RECORDS``.
MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"

#: Serialised size of all map output records in bytes, i.e. Hadoop's
#: ``MAP_OUTPUT_BYTES``.
MAP_OUTPUT_BYTES = "MAP_OUTPUT_BYTES"

MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
COMBINE_INPUT_RECORDS = "COMBINE_INPUT_RECORDS"
COMBINE_OUTPUT_RECORDS = "COMBINE_OUTPUT_RECORDS"
REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
REDUCE_INPUT_GROUPS = "REDUCE_INPUT_GROUPS"
REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
SHUFFLE_RECORDS = "SHUFFLE_RECORDS"
SHUFFLE_BYTES = "SHUFFLE_BYTES"

#: Spill activity of the external shuffle; only present on runs that
#: actually spilled, so in-memory runs keep their counter set unchanged.
SHUFFLE_SPILLS = "SHUFFLE_SPILLS"
SPILLED_RECORDS = "SPILLED_RECORDS"
SPILLED_BYTES = "SPILLED_BYTES"


class CounterGroup:
    """A named group of integer counters."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: Dict[str, int] = defaultdict(int)

    def increment(self, counter: str, amount: int = 1) -> None:
        """Add ``amount`` to ``counter`` (creating it at zero if absent)."""
        self._values[counter] += amount

    def get(self, counter: str) -> int:
        """Current value of ``counter`` (0 if never incremented)."""
        return self._values.get(counter, 0)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate over ``(counter, value)`` pairs."""
        return iter(sorted(self._values.items()))

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of the group as a plain dictionary."""
        return dict(self._values)

    def merge(self, other: "CounterGroup") -> None:
        """Add all counters of ``other`` into this group."""
        for counter, value in other._values.items():
            self._values[counter] += value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CounterGroup({self.name!r}, {dict(self._values)!r})"


class Counters:
    """A collection of counter groups, mirroring Hadoop's ``Counters``."""

    def __init__(self) -> None:
        self._groups: Dict[str, CounterGroup] = {}

    def group(self, name: str = TASK_GROUP) -> CounterGroup:
        """Return (creating if necessary) the group called ``name``."""
        if name not in self._groups:
            self._groups[name] = CounterGroup(name)
        return self._groups[name]

    def increment(self, counter: str, amount: int = 1, group: str = TASK_GROUP) -> None:
        """Increment ``counter`` in ``group`` by ``amount``."""
        self.group(group).increment(counter, amount)

    def get(self, counter: str, group: str = TASK_GROUP) -> int:
        """Value of ``counter`` in ``group``."""
        return self.group(group).get(counter)

    @property
    def map_output_records(self) -> int:
        """Convenience accessor for the paper's "# records" measure."""
        return self.get(MAP_OUTPUT_RECORDS)

    @property
    def map_output_bytes(self) -> int:
        """Convenience accessor for the paper's "bytes transferred" measure."""
        return self.get(MAP_OUTPUT_BYTES)

    def merge(self, other: "Counters") -> None:
        """Aggregate another ``Counters`` object into this one."""
        for name, group in other._groups.items():
            self.group(name).merge(group)

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Snapshot of all groups as nested dictionaries."""
        return {name: group.as_dict() for name, group in sorted(self._groups.items())}

    @classmethod
    def from_dict(cls, data: Mapping[str, Mapping[str, int]]) -> "Counters":
        """Rebuild a ``Counters`` object from :meth:`as_dict` output."""
        counters = cls()
        for group_name, group_values in data.items():
            for counter, value in group_values.items():
                counters.increment(counter, value, group=group_name)
        return counters

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Counters({self.as_dict()!r})"
