"""Emulation of Hadoop's distributed cache.

APRIORI-SCAN ships the previous iteration's output (the dictionary of
frequent (k-1)-grams) to every mapper.  On a cluster this is done either via
Hadoop's distributed cache (a per-node replica) or a shared key-value store;
in the in-process engine a :class:`DistributedCache` is simply a named,
read-mostly object registry that every task context can see.

The cache tracks the serialised size of everything published so experiments
can reason about the memory the paper says this dictionary requires on every
cluster node.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator

from repro.exceptions import MapReduceError
from repro.mapreduce.serialization import serialized_size


class DistributedCache:
    """A named registry of objects shared with every task of a pipeline."""

    def __init__(self) -> None:
        self._entries: Dict[str, Any] = {}
        self._sizes: Dict[str, int] = {}

    def publish(self, name: str, value: Any) -> None:
        """Publish ``value`` under ``name``, replacing any previous entry."""
        self._entries[name] = value
        try:
            self._sizes[name] = serialized_size(value)
        except Exception:
            # Size accounting is best effort; unsizeable objects count as 0.
            self._sizes[name] = 0

    def get(self, name: str) -> Any:
        """Retrieve the object published under ``name``."""
        if name not in self._entries:
            raise MapReduceError(f"distributed cache has no entry named {name!r}")
        return self._entries[name]

    def contains(self, name: str) -> bool:
        """Whether an entry named ``name`` has been published."""
        return name in self._entries

    def remove(self, name: str) -> None:
        """Remove the entry ``name`` if present."""
        self._entries.pop(name, None)
        self._sizes.pop(name, None)

    def size_bytes(self, name: str) -> int:
        """Approximate serialised size of the entry ``name`` in bytes."""
        if name not in self._sizes:
            raise MapReduceError(f"distributed cache has no entry named {name!r}")
        return self._sizes[name]

    def total_bytes(self) -> int:
        """Approximate serialised size of the whole cache."""
        return sum(self._sizes.values())

    def names(self) -> Iterator[str]:
        """Iterate over published entry names."""
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries
