"""Streaming datasets: the engine's InputFormat/OutputFormat analogue.

In the paper's deployment every job reads its input from and writes its
output to HDFS; records never live in the launcher's memory.  This module
gives the in-process engine the same property.  A :class:`Dataset` is an
ordered, splittable collection of ``(key, value)`` records:

* :class:`MemoryDataset` wraps a plain Python list — the fully-materialised
  mode, byte-compatible with how the engine has always behaved;
* :class:`FileDataset` is a sequence of on-disk *shards* framed with the
  varint record codec of :mod:`repro.mapreduce.serialization` (the same
  framing the external shuffle spills use).  Iteration streams records one
  frame at a time, and :meth:`FileDataset.split` plans contiguous map
  splits from the per-shard record counts alone — the input is never
  materialised, and a split pickles as shard paths plus offsets, so the
  process backend ships paths instead of record lists.

Split planning is shared (:func:`plan_split_sizes`), so a job sees the
exact same task boundaries whether its input lives in memory or on disk —
the property that keeps counter totals byte-identical across
materialisation modes, combiners included.

Reduce output flows through *sinks* (:class:`ListSink` /
:class:`ShardSink`): the task context appends emitted records to the sink,
which either buffers them or frames them straight to a shard file, and the
finished sinks are bundled back into the job's output dataset.

:class:`DatasetStorage` owns the directory shard files live in; datasets
keep a reference to their storage, so the directory survives exactly as
long as some dataset (or the runner) still points into it and is removed
by a ``weakref`` finalizer afterwards.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import weakref
from dataclasses import dataclass
from itertools import islice
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import DatasetError
from repro.mapreduce.serialization import (
    read_framed_records,
    record_size,
    write_framed_record,
)
from repro.util.codecs import get_codec

Record = Tuple[Any, Any]

#: Records per shard written by :meth:`FileDataset.write` unless overridden.
#: Shard boundaries are independent of split boundaries, so the value only
#: trades file count against sequential-skip cost inside boundary shards.
DEFAULT_RECORDS_PER_SHARD = 4096


def plan_split_sizes(num_records: int, num_splits: int) -> List[int]:
    """Sizes of at most ``num_splits`` contiguous splits of ``num_records``.

    This is the single source of truth for map-task boundaries: every
    dataset flavour divides the same global record sequence into the same
    contiguous ranges, so task-level quantities (combiner output, shuffle
    records, per-task metrics) cannot drift between materialisation modes.
    """
    if num_splits < 1:
        raise DatasetError(f"num_splits must be >= 1, got {num_splits}")
    if num_records == 0:
        return [0]
    num_splits = min(num_splits, num_records)
    size, remainder = divmod(num_records, num_splits)
    return [size + (1 if index < remainder else 0) for index in range(num_splits)]


class Dataset:
    """An ordered, splittable collection of key-value records."""

    def iter_records(self) -> Iterator[Record]:
        """Stream the records in order."""
        raise NotImplementedError

    @property
    def num_records(self) -> int:
        """Total number of records (known without reading the data)."""
        raise NotImplementedError

    def split(self, num_splits: int) -> List[Any]:
        """Plan at most ``num_splits`` contiguous map splits.

        Each split is iterable, sized (``len()``) and picklable; an empty
        dataset yields exactly one empty split, so a job's mapper lifecycle
        hooks still run once.
        """
        raise NotImplementedError

    def release(self) -> None:
        """Drop the dataset's records (delete backing files, free buffers)."""
        raise NotImplementedError

    @property
    def released(self) -> bool:
        """Whether :meth:`release` has been called."""
        raise NotImplementedError

    # ------------------------------------------------------- shared helpers
    def __iter__(self) -> Iterator[Record]:
        return self.iter_records()

    def __len__(self) -> int:
        return self.num_records

    def to_list(self) -> List[Record]:
        """Materialise every record (the non-streaming escape hatch)."""
        return list(self.iter_records())

    def _check_live(self) -> None:
        if self.released:
            raise DatasetError(
                f"{type(self).__name__} has been released; its records were "
                "dropped by the pipeline's retention policy"
            )


class MemoryDataset(Dataset):
    """A dataset backed by an in-memory record list."""

    def __init__(self, records: Iterable[Record]) -> None:
        self._records: Optional[List[Record]] = (
            records if isinstance(records, list) else list(records)
        )

    def iter_records(self) -> Iterator[Record]:
        self._check_live()
        return iter(self._records)

    @property
    def num_records(self) -> int:
        self._check_live()
        return len(self._records)

    def split(self, num_splits: int) -> List[List[Record]]:
        self._check_live()
        sizes = plan_split_sizes(len(self._records), num_splits)
        splits: List[List[Record]] = []
        start = 0
        for size in sizes:
            splits.append(self._records[start : start + size])
            start += size
        return splits

    def to_list(self) -> List[Record]:
        self._check_live()
        return self._records

    def release(self) -> None:
        self._records = None

    @property
    def released(self) -> bool:
        return self._records is None


@dataclass(frozen=True)
class Shard:
    """One on-disk file of varint-framed records plus its bookkeeping.

    ``codec`` names the stream compression the file was written with (see
    :mod:`repro.util.codecs`); the varint framing is applied to the
    *decompressed* stream, so readers are codec-agnostic past ``open``.
    """

    path: str
    num_records: int
    serialized_bytes: int
    codec: str = "none"

    def iter_records(self) -> Iterator[Record]:
        with get_codec(self.codec).open_read(self.path) as handle:
            yield from read_framed_records(handle)


class ShardWriter:
    """Frames records into one shard file, tracking counts and sizes.

    ``serialized_bytes`` uses the same :func:`record_size` accounting as the
    shuffle counters (the paper's compact encoding), independent of the
    pickled frame size actually written — and of any stream compression the
    ``codec`` applies on the way to disk.
    """

    def __init__(self, path: str, codec: str = "none") -> None:
        self.path = path
        self.codec = codec
        self.num_records = 0
        self.serialized_bytes = 0
        self._handle = get_codec(codec).open_write(path)

    def append(self, key: Any, value: Any) -> None:
        write_framed_record(self._handle, key, value)
        self.num_records += 1
        self.serialized_bytes += record_size(key, value)

    def close(self) -> Shard:
        self._handle.close()
        return Shard(
            path=self.path,
            num_records=self.num_records,
            serialized_bytes=self.serialized_bytes,
            codec=self.codec,
        )


@dataclass(frozen=True)
class FileSplit:
    """One map split of a :class:`FileDataset`: shard segments to stream.

    ``segments`` are ``(path, skip, count)`` triples; iterating opens each
    shard in turn (through the dataset's ``codec``), skips ``skip`` leading
    records and yields the next ``count``.  The object holds paths only, so
    shipping it to a worker process costs a few hundred bytes regardless of
    the split's size.
    """

    segments: Tuple[Tuple[str, int, int], ...]
    codec: str = "none"

    def __len__(self) -> int:
        return sum(count for _, _, count in self.segments)

    def __iter__(self) -> Iterator[Record]:
        codec = get_codec(self.codec)
        for path, skip, count in self.segments:
            with codec.open_read(path) as handle:
                yield from islice(read_framed_records(handle), skip, skip + count)


class FileDataset(Dataset):
    """A sharded on-disk dataset of varint-framed records."""

    def __init__(self, shards: Sequence[Shard], storage: Optional["DatasetStorage"] = None) -> None:
        self._shards: Optional[Tuple[Shard, ...]] = tuple(shards)
        # Keeps the owning directory's finalizer from firing while any
        # dataset still points at files inside it.
        self._storage = storage

    @classmethod
    def write(
        cls,
        records: Iterable[Record],
        *,
        storage: Optional["DatasetStorage"] = None,
        directory: Optional[str] = None,
        name: str = "dataset",
        records_per_shard: int = DEFAULT_RECORDS_PER_SHARD,
        codec: str = "none",
    ) -> "FileDataset":
        """Stream ``records`` into shard files, bounded by ``records_per_shard``.

        Exactly one of ``storage`` / ``directory`` selects where shards
        live; with ``directory`` the caller owns the files' lifetime.
        ``codec`` selects the stream compression of the shard files.
        """
        if records_per_shard < 1:
            raise DatasetError(f"records_per_shard must be >= 1, got {records_per_shard}")
        if (storage is None) == (directory is None):
            raise DatasetError("exactly one of storage/directory must be given")
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

        def shard_path(index: int) -> str:
            basename = f"{name}-{index:05d}"
            if storage is not None:
                return storage.allocate(basename)
            return os.path.join(directory, f"{basename}.shard")

        shards: List[Shard] = []
        writer: Optional[ShardWriter] = None
        for key, value in records:
            if writer is None:
                writer = ShardWriter(shard_path(len(shards)), codec=codec)
            writer.append(key, value)
            if writer.num_records >= records_per_shard:
                shards.append(writer.close())
                writer = None
        if writer is not None:
            shards.append(writer.close())
        return cls(shards, storage=storage)

    @property
    def shards(self) -> Tuple[Shard, ...]:
        self._check_live()
        return self._shards

    def iter_records(self) -> Iterator[Record]:
        self._check_live()
        shards = self._shards

        def generate() -> Iterator[Record]:
            for shard in shards:
                yield from shard.iter_records()

        return generate()

    @property
    def num_records(self) -> int:
        self._check_live()
        return sum(shard.num_records for shard in self._shards)

    def split(self, num_splits: int) -> List[FileSplit]:
        """Plan contiguous splits from shard record counts, without reading.

        Split boundaries follow :func:`plan_split_sizes` over the *global*
        record sequence; a boundary falling inside a shard becomes a
        ``skip`` offset, so shard size never influences task boundaries.
        """
        self._check_live()
        sizes = plan_split_sizes(self.num_records, num_splits)
        codec = self._shards[0].codec if self._shards else "none"
        splits: List[FileSplit] = []
        shard_index = 0
        offset = 0  # records of the current shard already assigned
        for size in sizes:
            segments: List[Tuple[str, int, int]] = []
            needed = size
            while needed > 0:
                shard = self._shards[shard_index]
                available = shard.num_records - offset
                take = min(needed, available)
                segments.append((shard.path, offset, take))
                needed -= take
                offset += take
                if offset == shard.num_records:
                    shard_index += 1
                    offset = 0
            splits.append(FileSplit(segments=tuple(segments), codec=codec))
        return splits

    def release(self) -> None:
        if self._shards is None:
            return
        for shard in self._shards:
            try:
                os.remove(shard.path)
            except OSError:
                # Another dataset sharing the shard (the per-partition view
                # of a job output) may have removed it already.
                pass
        self._shards = None

    @property
    def released(self) -> bool:
        return self._shards is None


class CollectionDataset(Dataset):
    """A splittable, read-only view over a record source.

    The source is any object exposing ``records()`` (a document collection,
    encoded or raw); ``num_records`` must match what one pass over
    ``records()`` yields.  Splits re-iterate the source and slice it
    lazily, so nothing is materialised — but a split pickles the whole
    source, so this view suits the in-process backends.
    """

    def __init__(self, source: Any, num_records: int) -> None:
        self._source = source
        self._num_records = num_records

    def iter_records(self) -> Iterator[Record]:
        return iter(self._source.records())

    @property
    def num_records(self) -> int:
        return self._num_records

    def split(self, num_splits: int) -> List["_SourceSlice"]:
        sizes = plan_split_sizes(self._num_records, num_splits)
        splits: List[_SourceSlice] = []
        start = 0
        for size in sizes:
            splits.append(_SourceSlice(self._source, start, size))
            start += size
        return splits

    def release(self) -> None:
        raise DatasetError("a collection-backed dataset cannot be released")

    @property
    def released(self) -> bool:
        return False


@dataclass(frozen=True)
class _SourceSlice:
    """A contiguous range of a record source's output."""

    source: Any
    start: int
    count: int

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[Record]:
        return islice(iter(self.source.records()), self.start, self.start + self.count)


def as_dataset(records: Any) -> Dataset:
    """Adapt job input to a dataset: datasets pass through, iterables wrap."""
    if isinstance(records, Dataset):
        if records.released:
            raise DatasetError("cannot run a job over a released dataset")
        return records
    return MemoryDataset(records if isinstance(records, list) else list(records))


# ------------------------------------------------------------ reduce sinks
class ListSink:
    """Reduce-output sink buffering records in memory (the default)."""

    def __init__(self) -> None:
        self._records: List[Record] = []
        self.serialized_bytes = 0

    def begin(self) -> None:
        self._records = []
        self.serialized_bytes = 0

    def append(self, key: Any, value: Any) -> None:
        self._records.append((key, value))
        self.serialized_bytes += record_size(key, value)

    @property
    def num_records(self) -> int:
        return len(self._records)

    def finish(self) -> List[Record]:
        return self._records

    def abort(self) -> None:
        """Discard buffered output after a task failure."""
        self._records = []


@dataclass
class ShardSink:
    """Reduce-output sink framing records straight to shard files.

    Constructed with only a base path, so a process backend pickles it to
    the worker unopened; the worker calls :meth:`begin`, streams the reduce
    output to disk and sends back the resulting :class:`Shard` tuple —
    record lists never cross the process boundary.  Output rolls over to a
    new shard every ``records_per_shard`` records, so a later job splitting
    this partition never has to skip-decode more than one shard's worth of
    frames to reach a split boundary.
    """

    path: str
    records_per_shard: int = DEFAULT_RECORDS_PER_SHARD
    codec: str = "none"

    def begin(self) -> None:
        self._shards: List[Shard] = []
        self._closed_records = 0
        self._closed_bytes = 0
        self._writer = ShardWriter(self.path, codec=self.codec)

    def _roll(self) -> None:
        shard = self._writer.close()
        self._shards.append(shard)
        self._closed_records += shard.num_records
        self._closed_bytes += shard.serialized_bytes
        self._writer = ShardWriter(f"{self.path}.{len(self._shards)}", codec=self.codec)

    def append(self, key: Any, value: Any) -> None:
        if self._writer.num_records >= self.records_per_shard:
            self._roll()
        self._writer.append(key, value)

    @property
    def num_records(self) -> int:
        return self._closed_records + self._writer.num_records

    @property
    def serialized_bytes(self) -> int:
        return self._closed_bytes + self._writer.serialized_bytes

    def finish(self) -> Tuple[Shard, ...]:
        self._shards.append(self._writer.close())
        return tuple(self._shards)

    def abort(self) -> None:
        """Close and remove the partial shards after a task failure."""
        self._shards.append(self._writer.close())
        for shard in self._shards:
            try:
                os.remove(shard.path)
            except OSError:
                pass


class DatasetStorage:
    """Owns the directory dataset shards are written into.

    The directory is created lazily on first allocation (under ``base_dir``
    when given, else the system temp dir) and removed by a ``weakref``
    finalizer once nothing references the storage any more — job results
    keep their storage alive through their datasets, so final outputs stay
    readable for as long as they are held.
    """

    def __init__(self, base_dir: Optional[str] = None) -> None:
        self._base_dir = base_dir
        self._directory: Optional[str] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._sequence = 0

    @property
    def directory(self) -> str:
        if self._directory is None:
            if self._base_dir is not None:
                os.makedirs(self._base_dir, exist_ok=True)
                self._directory = tempfile.mkdtemp(prefix="repro-dataset-", dir=self._base_dir)
            else:
                self._directory = tempfile.mkdtemp(prefix="repro-dataset-")
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._directory, True
            )
        return self._directory

    def allocate(self, name: str) -> str:
        """Reserve a unique shard path (jobs may share one storage)."""
        self._sequence += 1
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "-" for ch in name)
        return os.path.join(self.directory, f"{self._sequence:06d}-{safe}.shard")

    def cleanup(self) -> None:
        """Remove the directory now instead of waiting for garbage collection."""
        if self._finalizer is not None:
            self._finalizer()
        self._directory = None
        self._finalizer = None
