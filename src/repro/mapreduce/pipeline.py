"""Multi-job pipelines.

The APRIORI methods launch one MapReduce job per n-gram length (Algorithms 2
and 3), and the maximality/closedness extension of SUFFIX-σ adds a
post-filtering job (Section VI.A).  :class:`JobPipeline` tracks every job run
of a method, aggregates counters across jobs (the paper reports bytes/records
as "aggregates over all Hadoop jobs launched") and exposes the per-job
metrics needed by the cluster cost model.

Job outputs are datasets (see :mod:`repro.mapreduce.dataset`), and the
pipeline applies a *retention policy* to them: with the default
``"final"`` policy each job's output is released as soon as the next job
of the pipeline has consumed it — in-memory outputs are freed, on-disk
shards deleted — so a long APRIORI chain holds at most one intermediate
result at a time.  Counters and metrics are always kept, because they are
what the harness measures.  ``"all"`` retains every output (the setting
the byte-identity agreement tests use to compare jobs pairwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Tuple, Union

from repro.config import RETENTION_POLICIES
from repro.exceptions import MapReduceError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import Counters
from repro.mapreduce.dataset import Dataset
from repro.mapreduce.job import JobSpec
from repro.mapreduce.metrics import JobMetrics, publish_job_metrics
from repro.mapreduce.runner import JobResult, LocalJobRunner

Record = Tuple[Any, Any]

#: Retain only the final job's output (the default; intermediates are
#: released once consumed) — see ``repro.config.RETENTION_POLICIES``.
RETENTION_FINAL = "final"
#: Retain every job's output.
RETENTION_ALL = "all"


@dataclass
class PipelineResult:
    """Aggregated outcome of all jobs a method launched."""

    job_results: List[JobResult] = field(default_factory=list)

    @property
    def num_jobs(self) -> int:
        return len(self.job_results)

    @property
    def counters(self) -> Counters:
        """Counters aggregated over every job of the pipeline."""
        total = Counters()
        for result in self.job_results:
            total.merge(result.counters)
        return total

    @property
    def job_metrics(self) -> List[JobMetrics]:
        return [result.metrics for result in self.job_results]

    @property
    def elapsed_seconds(self) -> float:
        """Total measured in-process wallclock over all jobs."""
        return sum(result.elapsed_seconds for result in self.job_results)

    @property
    def final_output_dataset(self) -> Optional[Dataset]:
        """Output dataset of the last job (``None`` if no job ran)."""
        if not self.job_results:
            return None
        return self.job_results[-1].output_dataset

    @property
    def final_output(self) -> List[Record]:
        """Output records of the last job (empty if no job ran)."""
        if not self.job_results:
            return []
        return self.job_results[-1].output

    def release_outputs(self) -> None:
        """Release every retained job output (counters/metrics survive)."""
        for result in self.job_results:
            if not result.output_released:
                result.release_output()


class JobPipeline:
    """Runs a sequence of jobs sharing one distributed cache.

    A pipeline is the unit of measurement for an algorithm run: all counters
    and metrics of the jobs it executed are retained so the harness can
    report totals exactly the way the paper does.  ``retention`` governs how
    long job *outputs* live (see the module docstring).
    """

    def __init__(
        self,
        runner: Optional[LocalJobRunner] = None,
        cache: Optional[DistributedCache] = None,
        default_map_tasks: int = 4,
        retention: str = RETENTION_FINAL,
    ) -> None:
        if retention not in RETENTION_POLICIES:
            raise MapReduceError(
                f"retention must be one of {', '.join(RETENTION_POLICIES)}, "
                f"got {retention!r}"
            )
        if cache is None and runner is not None:
            # Adopt the runner's cache so that objects the pipeline publishes
            # (e.g. APRIORI-SCAN's dictionary) are the ones tasks read.
            cache = runner.cache
        self.cache = cache if cache is not None else DistributedCache()
        self.runner = runner if runner is not None else LocalJobRunner(
            cache=self.cache, default_map_tasks=default_map_tasks
        )
        self.retention = retention
        self.result = PipelineResult()

    def materialize_input(self, records: Iterable[Record], name: str = "input") -> Dataset:
        """Materialise an input record stream under the runner's policy.

        In disk mode the stream is written straight to a sharded on-disk
        dataset; in memory mode it is buffered once.  Either way the result
        can feed several jobs (APRIORI's per-length scans) without being
        re-prepared.
        """
        return self.runner.materialize_dataset(records, name=name)

    def run_job(
        self, job: JobSpec, input_records: Union[Dataset, Iterable[Record]]
    ) -> JobResult:
        """Run one job, recording its result in the pipeline history.

        Under the ``"final"`` retention policy, completing this job releases
        the previous job's output — by then the only consumer (this job's
        input stream) has read it.
        """
        job_result = self.runner.run(job, input_records)
        publish_job_metrics(job_result)
        if self.retention == RETENTION_FINAL and self.result.job_results:
            previous = self.result.job_results[-1]
            if not previous.output_released:
                previous.release_output()
        self.result.job_results.append(job_result)
        return job_result

    @property
    def counters(self) -> Counters:
        """Counters aggregated over all jobs run so far."""
        return self.result.counters

    @property
    def num_jobs(self) -> int:
        return self.result.num_jobs
