"""Multi-job pipelines.

The APRIORI methods launch one MapReduce job per n-gram length (Algorithms 2
and 3), and the maximality/closedness extension of SUFFIX-σ adds a
post-filtering job (Section VI.A).  :class:`JobPipeline` tracks every job run
of a method, aggregates counters across jobs (the paper reports bytes/records
as "aggregates over all Hadoop jobs launched") and exposes the per-job
metrics needed by the cluster cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Tuple

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobSpec
from repro.mapreduce.metrics import JobMetrics
from repro.mapreduce.runner import JobResult, LocalJobRunner

Record = Tuple[Any, Any]


@dataclass
class PipelineResult:
    """Aggregated outcome of all jobs a method launched."""

    job_results: List[JobResult] = field(default_factory=list)

    @property
    def num_jobs(self) -> int:
        return len(self.job_results)

    @property
    def counters(self) -> Counters:
        """Counters aggregated over every job of the pipeline."""
        total = Counters()
        for result in self.job_results:
            total.merge(result.counters)
        return total

    @property
    def job_metrics(self) -> List[JobMetrics]:
        return [result.metrics for result in self.job_results]

    @property
    def elapsed_seconds(self) -> float:
        """Total measured in-process wallclock over all jobs."""
        return sum(result.elapsed_seconds for result in self.job_results)

    @property
    def final_output(self) -> List[Record]:
        """Output records of the last job (empty if no job ran)."""
        if not self.job_results:
            return []
        return self.job_results[-1].output


class JobPipeline:
    """Runs a sequence of jobs sharing one distributed cache.

    A pipeline is the unit of measurement for an algorithm run: all counters
    and metrics of the jobs it executed are retained so the harness can
    report totals exactly the way the paper does.
    """

    def __init__(
        self,
        runner: Optional[LocalJobRunner] = None,
        cache: Optional[DistributedCache] = None,
        default_map_tasks: int = 4,
    ) -> None:
        if cache is None and runner is not None:
            # Adopt the runner's cache so that objects the pipeline publishes
            # (e.g. APRIORI-SCAN's dictionary) are the ones tasks read.
            cache = runner.cache
        self.cache = cache if cache is not None else DistributedCache()
        self.runner = runner if runner is not None else LocalJobRunner(
            cache=self.cache, default_map_tasks=default_map_tasks
        )
        self.result = PipelineResult()

    def run_job(self, job: JobSpec, input_records: Iterable[Record]) -> JobResult:
        """Run one job, recording its result in the pipeline history."""
        job_result = self.runner.run(job, input_records)
        self.result.job_results.append(job_result)
        return job_result

    @property
    def counters(self) -> Counters:
        """Counters aggregated over all jobs run so far."""
        return self.result.counters

    @property
    def num_jobs(self) -> int:
        return self.result.num_jobs
