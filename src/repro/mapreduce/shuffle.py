"""The shuffle: partitioning, sorting, spilling and grouping of map output.

This is the stage the paper's algorithms customise the most: SUFFIX-σ
partitions suffixes by their *first term only* and sorts them in reverse
lexicographic order so that its reducer can aggregate prefix counts with two
stacks (Algorithm 4).  The functions here implement the generic machinery.

Two shuffle implementations exist:

* the in-memory functions (:func:`partition_records`, :func:`sort_partition`,
  :func:`shuffle`) materialise every partition as a Python list — fine for
  small inputs, but the memory ceiling is the full shuffle volume;
* :class:`ExternalShuffle` buffers records per partition up to a configurable
  byte budget, spills sorted runs to varint-framed temp files (the same
  migrate-to-disk policy as :class:`repro.kvstore.spilling.SpillingKVStore`)
  and streams each reduce partition from a k-way :func:`heapq.merge` of its
  runs — Hadoop's sort-spill-merge shuffle in miniature.

Two further pieces complete the map side of the out-of-core story:

* :class:`CombineBuffer` is the bounded sort/combine buffer map emissions
  flow through when a job configures a combiner: once the buffered records
  exceed the spill budget they are sorted, grouped and combined, and only
  the combined records move on — combine-per-*spill* instead of
  combine-per-task, so a map task's peak is capped by the budget no matter
  how much it emits;
* :class:`MapTaskSpills` describes the output of a map task that partitioned
  and spilled *locally* in a worker process (see
  :mod:`repro.mapreduce.process`); the parent adopts the run paths into its
  shuffle with :meth:`ExternalShuffle.adopt_runs` instead of receiving the
  records themselves.
"""

from __future__ import annotations

import heapq
import os
import shutil
import tempfile
from dataclasses import dataclass
from functools import cmp_to_key
from itertools import chain
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import MapReduceError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.context import CountingSink, TaskContext
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobSpec, Partitioner, SortComparator
from repro.mapreduce.serialization import read_framed_records, record_size, write_framed_record
from repro.util.codecs import get_codec

Record = Tuple[Any, Any]
KeyGroup = Tuple[Any, List[Any]]


def partition_records(
    records: Iterable[Record],
    partitioner: Partitioner,
    num_partitions: int,
) -> List[List[Record]]:
    """Assign every record to one of ``num_partitions`` buckets."""
    if num_partitions < 1:
        raise MapReduceError("num_partitions must be >= 1")
    partitions: List[List[Record]] = [[] for _ in range(num_partitions)]
    for key, value in records:
        index = partitioner.partition(key, num_partitions)
        if not 0 <= index < num_partitions:
            raise MapReduceError(
                f"partitioner returned index {index} outside [0, {num_partitions})"
            )
        partitions[index].append((key, value))
    return partitions


def sort_partition(records: List[Record], comparator: SortComparator) -> List[Record]:
    """Sort one partition's records by key using ``comparator`` (stable).

    When the comparator exposes an equivalent key function (the analogue of a
    Hadoop raw comparator), the key-based sort is used; it produces the same
    order much faster than a comparison-based sort.
    """
    fast_key = comparator.sort_key_function()
    if fast_key is not None:
        try:
            return sorted(records, key=lambda record: fast_key(record[0]))
        except TypeError:
            # Keys not supported by the fast path (e.g. string terms given an
            # integer-oriented key function); fall back to the comparator.
            pass
    key_function = cmp_to_key(comparator.compare)
    return sorted(records, key=lambda record: key_function(record[0]))


def group_sorted_records(records: Sequence[Record], comparator: SortComparator) -> Iterator[KeyGroup]:
    """Group consecutive records whose keys compare equal.

    ``records`` must already be sorted by ``comparator``; grouping uses the
    comparator's notion of equality (compare() == 0), mirroring Hadoop's
    grouping comparator semantics.
    """
    current_key: Any = None
    current_values: List[Any] = []
    have_group = False
    for key, value in records:
        if have_group and comparator.compare(key, current_key) == 0:
            current_values.append(value)
        else:
            if have_group:
                yield current_key, current_values
            current_key = key
            current_values = [value]
            have_group = True
    if have_group:
        yield current_key, current_values


def shuffle(
    records: Iterable[Record],
    partitioner: Partitioner,
    comparator: SortComparator,
    num_partitions: int,
) -> List[List[Record]]:
    """Partition and sort map output, returning per-partition sorted records."""
    partitions = partition_records(records, partitioner, num_partitions)
    return [sort_partition(partition, comparator) for partition in partitions]


# --------------------------------------------------- map-side combine buffer
class CombineBuffer:
    """Bounded map-side sort/combine buffer (Hadoop's combine-per-spill).

    Used as the map task's emission sink when the job configures a
    combiner.  Emissions buffer up to the configured budget (serialised
    bytes and/or record count — the same knobs as the external shuffle);
    past it the buffer is sorted with the job's sort comparator, grouped,
    run through a fresh combiner instance, and the *combined* records are
    forwarded to ``output``.  :meth:`flush` combines the remainder when the
    task ends.

    With no budget configured the buffer combines exactly once at flush
    time, which is byte-identical (records, bytes, counters) to the
    historical combine-per-task behaviour.  With a budget, a key spanning
    several spills reaches the reducer as several partial aggregates — the
    combiner contract (associative, commutative, same types in and out)
    makes the reduce output identical either way, while the task's peak
    memory is capped by the budget instead of its emission volume.

    Counter totals (``COMBINE_*``, and the ``MAP_OUTPUT_*`` /
    ``SHUFFLE_*`` totals published by the runner from the buffer's
    aggregates) depend only on the task's emission stream and the budget,
    never on the execution backend — the property the cross-backend
    agreement tests pin down.
    """

    def __init__(
        self,
        job: JobSpec,
        counters: Counters,
        cache: DistributedCache,
        output: Callable[[Any, Any], None],
        spill_threshold_bytes: Optional[int] = None,
        spill_threshold_records: Optional[int] = None,
    ) -> None:
        if job.combiner_factory is None:
            raise MapReduceError(
                f"job {job.name!r} has no combiner; the combine buffer requires one"
            )
        if spill_threshold_bytes is not None and spill_threshold_bytes < 1:
            raise MapReduceError("spill_threshold_bytes must be >= 1 or None")
        if spill_threshold_records is not None and spill_threshold_records < 1:
            raise MapReduceError("spill_threshold_records must be >= 1 or None")
        self._job = job
        self._counters = counters
        self._cache = cache
        self._output = output
        self.spill_threshold_bytes = spill_threshold_bytes
        self.spill_threshold_records = spill_threshold_records
        self._records: List[Record] = []
        self._buffered_bytes = 0
        #: Pre-combine totals (the job's ``MAP_OUTPUT_*`` quantities).
        self.emitted_records = 0
        self.emitted_bytes = 0
        #: Post-combine totals (the job's ``SHUFFLE_*`` quantities).
        self.combined_records = 0
        self.combined_bytes = 0
        #: Records sorted across all combine rounds (task metrics).
        self.sorted_records = 0
        #: Budget-triggered combine rounds (0 means combine-per-task).
        self.num_spills = 0

    # ------------------------------------------------------------ internals
    def _over_budget(self) -> bool:
        if (
            self.spill_threshold_bytes is not None
            and self._buffered_bytes > self.spill_threshold_bytes
        ):
            return True
        return (
            self.spill_threshold_records is not None
            and len(self._records) > self.spill_threshold_records
        )

    def _combine(self) -> None:
        """Sort, group and combine the buffered records; forward the output."""
        records = self._records
        if not records:
            return
        comparator = self._job.sort_comparator
        sorted_records = sort_partition(records, comparator)
        self.sorted_records += len(records)
        self._records = []
        self._buffered_bytes = 0
        combiner = self._job.make_combiner()
        sink = CountingSink(self._output)
        context = TaskContext(counters=self._counters, cache=self._cache, sink=sink)
        combiner.setup(context)
        for key, values in group_sorted_records(sorted_records, comparator):
            self._counters.increment(counter_names.COMBINE_INPUT_RECORDS, len(values))
            combiner.reduce(key, values, context)
        combiner.cleanup(context)
        self._counters.increment(counter_names.COMBINE_OUTPUT_RECORDS, sink.num_records)
        self.combined_records += sink.num_records
        self.combined_bytes += sink.serialized_bytes

    # ------------------------------------------------------------ interface
    def append(self, key: Any, value: Any) -> None:
        """Buffer one map emission, combining when the budget is exceeded."""
        size = record_size(key, value)
        self.emitted_records += 1
        self.emitted_bytes += size
        self._records.append((key, value))
        self._buffered_bytes += size
        if self._over_budget():
            self.num_spills += 1
            self._combine()

    def flush(self) -> None:
        """Combine whatever remains buffered (call once, when the task ends)."""
        self._combine()


# ------------------------------------------------------- external shuffle
#: Maximum number of runs merged in one pass (the analogue of Hadoop's
#: ``io.sort.factor``).  More runs trigger intermediate merge passes, so the
#: number of simultaneously open spill files stays bounded no matter how far
#: the spill threshold sits below the shuffle volume.
MERGE_FAN_IN = 64


def iter_run_file(path: str, codec: str = "none") -> Iterator[Record]:
    """Stream the records of one spilled run file."""
    with get_codec(codec).open_read(path) as handle:
        yield from read_framed_records(handle)


def _resolve_merge_key(
    runs: List[Iterable[Record]], comparator: SortComparator
) -> Tuple[List[Iterable[Record]], Callable[[Record], Any]]:
    """Pick the merge key function, preferring the comparator's fast path.

    Mirrors :func:`sort_partition`'s fallback: the fast key is validated on
    the first record of every run (re-attached to its stream afterwards);
    if any first key is unsupported, the comparison-based key is used.
    """
    fast_key = comparator.sort_key_function()
    if fast_key is None:
        key_function = cmp_to_key(comparator.compare)
        return runs, lambda record: key_function(record[0])
    rebuilt: List[Iterable[Record]] = []
    usable = True
    for run in runs:
        iterator = iter(run)
        try:
            first = next(iterator)
        except StopIteration:
            rebuilt.append(iterator)
            continue
        try:
            fast_key(first[0])
        except TypeError:
            usable = False
        rebuilt.append(chain((first,), iterator))
    if usable:
        return rebuilt, lambda record: fast_key(record[0])
    key_function = cmp_to_key(comparator.compare)
    return rebuilt, lambda record: key_function(record[0])


def merge_sorted_runs(
    runs: Sequence[Iterable[Record]], comparator: SortComparator
) -> Iterator[Record]:
    """K-way merge of already-sorted record streams.

    ``heapq.merge`` is stable across its inputs (ties go to the earlier
    iterable), so merging runs in the order they were spilled reproduces the
    exact sequence a stable sort of the concatenated records would yield —
    the property that makes spilled and in-memory shuffles byte-identical.
    """
    if len(runs) == 1:
        return iter(runs[0])
    rebuilt, key = _resolve_merge_key(list(runs), comparator)
    return heapq.merge(*rebuilt, key=key)


def _merge_runs_to_file(
    paths: Sequence[str],
    comparator: SortComparator,
    partition_index: int,
    codec: str = "none",
) -> str:
    """Merge a batch of run files into one new run file (same directory)."""
    directory = os.path.dirname(paths[0])
    descriptor, merged_path = tempfile.mkstemp(
        dir=directory, prefix=f"merge-p{partition_index:05d}-", suffix=".run"
    )
    os.close(descriptor)
    with get_codec(codec).open_write(merged_path) as handle:
        for key, value in merge_sorted_runs(
            [iter_run_file(path, codec) for path in paths], comparator
        ):
            write_framed_record(handle, key, value)
    return merged_path


@dataclass(frozen=True)
class PartitionInput:
    """Input of one reduce task: spilled runs and/or buffered records.

    The object is picklable (runs are file paths, records plain tuples), so
    a process-based runner can ship it to a reduce worker, which then streams
    the merged runs locally instead of receiving a materialised partition.
    """

    partition_index: int
    run_paths: Tuple[str, ...] = ()
    records: Tuple[Record, ...] = ()
    codec: str = "none"

    @property
    def is_spilled(self) -> bool:
        """Whether any part of this partition lives on disk."""
        return bool(self.run_paths)

    def sorted_records(self, comparator: SortComparator) -> Iterator[Record]:
        """Stream the partition's records in ``comparator`` order.

        Spilled runs are merged with a k-way heap merge; the in-memory tail
        (records buffered after the last spill) is sorted and merged last,
        matching the stable order of a single in-memory sort.  When more
        than :data:`MERGE_FAN_IN` runs exist, consecutive batches are first
        merged into intermediate run files (preserving run order, hence
        stability), so the final merge never opens an unbounded number of
        files.  Intermediate files land in the shuffle's run directory and
        are removed with it by :meth:`ExternalShuffle.cleanup`.
        """
        paths = list(self.run_paths)
        tail = 1 if self.records else 0
        while len(paths) + tail > MERGE_FAN_IN:
            merged: List[str] = []
            for begin in range(0, len(paths), MERGE_FAN_IN):
                batch = paths[begin : begin + MERGE_FAN_IN]
                if len(batch) == 1:
                    merged.append(batch[0])
                else:
                    merged.append(
                        _merge_runs_to_file(
                            batch, comparator, self.partition_index, self.codec
                        )
                    )
            paths = merged
        runs: List[Iterable[Record]] = [iter_run_file(path, self.codec) for path in paths]
        if self.records:
            runs.append(sort_partition(list(self.records), comparator))
        if not runs:
            return iter(())
        return merge_sorted_runs(runs, comparator)


@dataclass
class SpillStats:
    """Bookkeeping of one shuffle's spill activity."""

    num_spills: int = 0
    spilled_runs: int = 0
    spilled_records: int = 0
    spilled_bytes: int = 0

    def merge(self, other: "SpillStats") -> None:
        """Accumulate another shuffle's spill activity (worker-side spills)."""
        self.num_spills += other.num_spills
        self.spilled_runs += other.spilled_runs
        self.spilled_records += other.spilled_records
        self.spilled_bytes += other.spilled_bytes


@dataclass(frozen=True)
class MapTaskSpills:
    """Output of a map task that partitioned and spilled in a worker.

    ``run_paths[p]`` are the sorted run files of reduce partition ``p``, in
    spill order.  The object carries only paths and counts, so shipping it
    across the process boundary costs a few hundred bytes regardless of how
    much the task emitted; the parent folds it into its shuffle with
    :meth:`ExternalShuffle.adopt_runs`.
    """

    run_paths: Tuple[Tuple[str, ...], ...]
    stats: SpillStats


class ExternalShuffle:
    """Sort-spill-merge shuffle with a bounded in-memory buffer.

    Records are appended with :meth:`add`; once the serialised size of the
    buffered records exceeds ``spill_threshold_bytes`` every non-empty
    partition buffer is sorted and written out as one run file.  After
    :meth:`finalize`, :meth:`partition_input` describes each reduce
    partition; :class:`PartitionInput.sorted_records` streams it back in
    sort order without ever materialising the partition.

    The in-memory budget is expressed in serialised bytes
    (``spill_threshold_bytes``) and/or as a record count
    (``spill_threshold_records``); a spill triggers as soon as *either*
    configured budget is exceeded.  With neither set, spilling is disabled:
    the shuffle then degenerates to the plain in-memory partitioning of
    :func:`partition_records` (and :meth:`partition_input` carries the raw
    buffered records).  ``codec`` selects the stream compression of the run
    files (see :mod:`repro.util.codecs`).
    """

    def __init__(
        self,
        partitioner: Partitioner,
        comparator: SortComparator,
        num_partitions: int,
        spill_threshold_bytes: Optional[int] = None,
        spill_threshold_records: Optional[int] = None,
        spill_dir: Optional[str] = None,
        codec: str = "none",
    ) -> None:
        if num_partitions < 1:
            raise MapReduceError("num_partitions must be >= 1")
        if spill_threshold_bytes is not None and spill_threshold_bytes < 1:
            raise MapReduceError("spill_threshold_bytes must be >= 1 or None")
        if spill_threshold_records is not None and spill_threshold_records < 1:
            raise MapReduceError("spill_threshold_records must be >= 1 or None")
        self.partitioner = partitioner
        self.comparator = comparator
        self.num_partitions = num_partitions
        self.spill_threshold_bytes = spill_threshold_bytes
        self.spill_threshold_records = spill_threshold_records
        self.spill_dir = spill_dir
        self.codec = codec
        self.stats = SpillStats()
        self._buffers: List[List[Record]] = [[] for _ in range(num_partitions)]
        self._buffered_bytes = 0
        self._buffered_records = 0
        self._runs: List[List[str]] = [[] for _ in range(num_partitions)]
        self._run_dir: Optional[str] = None
        self._finalized = False

    # ----------------------------------------------------------- internals
    def _run_directory(self) -> str:
        # Every shuffle spills into its own unique directory — also under an
        # explicit ``spill_dir`` — so concurrent shuffles cannot clobber each
        # other's identically numbered run files, and cleanup() can remove
        # exactly the files this shuffle wrote.
        if self._run_dir is None:
            if self.spill_dir is not None:
                os.makedirs(self.spill_dir, exist_ok=True)
                self._run_dir = tempfile.mkdtemp(prefix="repro-shuffle-", dir=self.spill_dir)
            else:
                self._run_dir = tempfile.mkdtemp(prefix="repro-shuffle-")
        return self._run_dir

    def _spill(self) -> None:
        """Sort and write every non-empty partition buffer as one run file."""
        directory = self._run_directory()
        codec = get_codec(self.codec)
        for index, buffer in enumerate(self._buffers):
            if not buffer:
                continue
            run = sort_partition(buffer, self.comparator)
            path = os.path.join(
                directory, f"spill-{self.stats.num_spills:06d}-p{index:05d}.run"
            )
            with codec.open_write(path) as handle:
                for key, value in run:
                    write_framed_record(handle, key, value)
            self._runs[index].append(path)
            self.stats.spilled_runs += 1
            self.stats.spilled_records += len(run)
            self._buffers[index] = []
        self.stats.spilled_bytes += self._buffered_bytes
        self._buffered_bytes = 0
        self._buffered_records = 0
        self.stats.num_spills += 1

    # ------------------------------------------------------------ interface
    @property
    def spilled(self) -> bool:
        """Whether any run has been written to disk."""
        return self.stats.num_spills > 0

    def add(self, key: Any, value: Any) -> None:
        """Route one map output record to its partition buffer."""
        if self._finalized:
            raise MapReduceError("cannot add records to a finalized shuffle")
        index = self.partitioner.partition(key, self.num_partitions)
        if not 0 <= index < self.num_partitions:
            raise MapReduceError(
                f"partitioner returned index {index} outside [0, {self.num_partitions})"
            )
        self._buffers[index].append((key, value))
        if self.spill_threshold_bytes is None and self.spill_threshold_records is None:
            return
        # Bytes are metered under either budget so spilled-bytes counters
        # stay meaningful when the trigger is the record count.
        self._buffered_bytes += record_size(key, value)
        self._buffered_records += 1
        if (
            self.spill_threshold_bytes is not None
            and self._buffered_bytes > self.spill_threshold_bytes
        ) or (
            self.spill_threshold_records is not None
            and self._buffered_records > self.spill_threshold_records
        ):
            self._spill()

    def add_records(self, records: Iterable[Record]) -> None:
        """Route a batch of map output records."""
        for key, value in records:
            self.add(key, value)

    def finalize(self, spill_remainder: bool = False) -> None:
        """Seal the shuffle; once spilled, the in-memory remainder spills too.

        Flushing the tail keeps the memory ceiling at the spill threshold for
        the whole reduce phase and lets process-based runners hand reduce
        workers nothing but run file paths.  ``spill_remainder`` forces the
        buffered remainder out even when no budget spill ever triggered —
        the worker-side partial shuffle uses it so a map task's entire
        output leaves the worker as run files.
        """
        if self._finalized:
            return
        if (self.spilled or spill_remainder) and any(self._buffers):
            self._spill()
        self._finalized = True

    def ensure_run_dir(self) -> str:
        """Create (if needed) and return this shuffle's private run directory.

        A parent runner hands the directory to its map workers as the root
        their worker-local shuffles spill under, so :meth:`cleanup` removes
        worker runs together with the parent's own.
        """
        return self._run_directory()

    def run_paths(self) -> List[Tuple[str, ...]]:
        """The spilled run paths of every partition, in spill order."""
        return [tuple(runs) for runs in self._runs]

    def adopt_runs(
        self,
        run_paths: Sequence[Sequence[str]],
        stats: Optional[SpillStats] = None,
    ) -> None:
        """Fold externally spilled runs (one worker map task) into this shuffle.

        ``run_paths`` must describe every partition.  Runs are appended in
        call order, so a parent adopting task results in task order
        reproduces exactly the record order :func:`merge_sorted_runs`'s
        stability contract requires.  ``stats`` (the worker shuffle's spill
        activity) is accumulated so spill counters cover worker-side spills.
        """
        if self._finalized:
            raise MapReduceError("cannot adopt runs into a finalized shuffle")
        if len(run_paths) != self.num_partitions:
            raise MapReduceError(
                f"adopted runs describe {len(run_paths)} partitions, "
                f"expected {self.num_partitions}"
            )
        for index, paths in enumerate(run_paths):
            self._runs[index].extend(paths)
        if stats is not None:
            self.stats.merge(stats)

    def partition_input(self, index: int) -> PartitionInput:
        """Describe the input of reduce partition ``index``."""
        if not 0 <= index < self.num_partitions:
            raise MapReduceError(
                f"partition index {index} outside [0, {self.num_partitions})"
            )
        return PartitionInput(
            partition_index=index,
            run_paths=tuple(self._runs[index]),
            records=tuple(self._buffers[index]),
            codec=self.codec,
        )

    def partition_inputs(self) -> List[PartitionInput]:
        """Describe every reduce partition."""
        return [self.partition_input(index) for index in range(self.num_partitions)]

    def cleanup(self) -> None:
        """Delete spilled run files (safe to call multiple times)."""
        if self._run_dir is not None:
            shutil.rmtree(self._run_dir, ignore_errors=True)
            self._run_dir = None
        self._runs = [[] for _ in range(self.num_partitions)]

    def __enter__(self) -> "ExternalShuffle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.cleanup()
