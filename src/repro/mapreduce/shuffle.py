"""The shuffle: partitioning, sorting and grouping of map output.

This is the stage the paper's algorithms customise the most: SUFFIX-σ
partitions suffixes by their *first term only* and sorts them in reverse
lexicographic order so that its reducer can aggregate prefix counts with two
stacks (Algorithm 4).  The functions here implement the generic machinery.
"""

from __future__ import annotations

from functools import cmp_to_key
from typing import Any, Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import MapReduceError
from repro.mapreduce.job import Partitioner, SortComparator

Record = Tuple[Any, Any]
KeyGroup = Tuple[Any, List[Any]]


def partition_records(
    records: Iterable[Record],
    partitioner: Partitioner,
    num_partitions: int,
) -> List[List[Record]]:
    """Assign every record to one of ``num_partitions`` buckets."""
    if num_partitions < 1:
        raise MapReduceError("num_partitions must be >= 1")
    partitions: List[List[Record]] = [[] for _ in range(num_partitions)]
    for key, value in records:
        index = partitioner.partition(key, num_partitions)
        if not 0 <= index < num_partitions:
            raise MapReduceError(
                f"partitioner returned index {index} outside [0, {num_partitions})"
            )
        partitions[index].append((key, value))
    return partitions


def sort_partition(records: List[Record], comparator: SortComparator) -> List[Record]:
    """Sort one partition's records by key using ``comparator`` (stable).

    When the comparator exposes an equivalent key function (the analogue of a
    Hadoop raw comparator), the key-based sort is used; it produces the same
    order much faster than a comparison-based sort.
    """
    fast_key = comparator.sort_key_function()
    if fast_key is not None:
        try:
            return sorted(records, key=lambda record: fast_key(record[0]))
        except TypeError:
            # Keys not supported by the fast path (e.g. string terms given an
            # integer-oriented key function); fall back to the comparator.
            pass
    key_function = cmp_to_key(comparator.compare)
    return sorted(records, key=lambda record: key_function(record[0]))


def group_sorted_records(records: Sequence[Record], comparator: SortComparator) -> Iterator[KeyGroup]:
    """Group consecutive records whose keys compare equal.

    ``records`` must already be sorted by ``comparator``; grouping uses the
    comparator's notion of equality (compare() == 0), mirroring Hadoop's
    grouping comparator semantics.
    """
    current_key: Any = None
    current_values: List[Any] = []
    have_group = False
    for key, value in records:
        if have_group and comparator.compare(key, current_key) == 0:
            current_values.append(value)
        else:
            if have_group:
                yield current_key, current_values
            current_key = key
            current_values = [value]
            have_group = True
    if have_group:
        yield current_key, current_values


def shuffle(
    records: Iterable[Record],
    partitioner: Partitioner,
    comparator: SortComparator,
    num_partitions: int,
) -> List[List[Record]]:
    """Partition and sort map output, returning per-partition sorted records."""
    partitions = partition_records(records, partitioner, num_partitions)
    return [sort_partition(partition, comparator) for partition in partitions]
