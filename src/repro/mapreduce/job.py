"""The MapReduce programming contract: mappers, reducers, partitioners.

A job is described by a :class:`JobSpec` that wires together user-supplied
classes, mirroring how a Hadoop job configuration names a mapper class, a
reducer class, an optional combiner, a partitioner and a sort comparator.
The classes are instantiated per task by the runner, so instance attributes
are task-local state (exactly the property the SUFFIX-σ reducer relies on for
its two stacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.exceptions import MapReduceError
from repro.util.hashing import stable_hash


class Emitter:
    """Target of ``context.emit`` calls; implemented by the runner contexts."""

    def emit(self, key: Any, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Mapper:
    """Base class for map functions.

    Subclasses override :meth:`map`; :meth:`setup` and :meth:`cleanup` are
    invoked once per map task, before the first and after the last input
    record respectively.
    """

    def setup(self, context: "TaskContext") -> None:
        """Hook called once before any input record of the task."""

    def map(self, key: Any, value: Any, context: "TaskContext") -> None:
        """Process one input record, emitting any number of key-value pairs."""
        raise NotImplementedError

    def cleanup(self, context: "TaskContext") -> None:
        """Hook called once after the last input record of the task."""


class Reducer:
    """Base class for reduce functions.

    The runner instantiates one reducer per partition and calls
    :meth:`reduce` once per distinct key, in the order determined by the
    job's sort comparator.  State kept on ``self`` therefore persists across
    keys of the same partition — the property SUFFIX-σ exploits.
    """

    def setup(self, context: "TaskContext") -> None:
        """Hook called once before the first key of the partition."""

    def reduce(self, key: Any, values: Iterable[Any], context: "TaskContext") -> None:
        """Process one key group, emitting any number of key-value pairs."""
        raise NotImplementedError

    def cleanup(self, context: "TaskContext") -> None:
        """Hook called once after the last key of the partition."""


class Combiner(Reducer):
    """Map-side local aggregation; same contract as a reducer."""


class Partitioner:
    """Assigns each map output key to one of ``num_partitions`` reducers."""

    def partition(self, key: Any, num_partitions: int) -> int:
        """Return the partition index in ``[0, num_partitions)`` for ``key``."""
        return stable_hash(key) % num_partitions


class SortComparator:
    """Total order on map output keys within each partition.

    The default orders keys by Python's natural ordering.  Jobs such as
    SUFFIX-σ install a custom comparator (reverse lexicographic order of
    suffixes, Algorithm 4 of the paper).
    """

    def compare(self, left: Any, right: Any) -> int:
        """Return negative / zero / positive like a classic comparator."""
        if left < right:
            return -1
        if left > right:
            return 1
        return 0

    def sort_key_function(self) -> Optional[Callable[[Any], Any]]:
        """Optional key function equivalent to :meth:`compare`.

        When a comparator can express its order as a key extraction (the
        analogue of Hadoop's raw comparators, Section V of the paper), the
        shuffle uses it instead of a comparison-based sort, which is
        substantially faster in CPython.  The base class compares by natural
        ordering, so it can return the identity key; subclasses that override
        :meth:`compare` without overriding this method automatically fall
        back to the comparator.
        """
        if type(self) is SortComparator:
            return lambda key: key
        return None


class IdentityMapper(Mapper):
    """Mapper that forwards its input records unchanged."""

    def map(self, key: Any, value: Any, context: "TaskContext") -> None:
        context.emit(key, value)


class IdentityReducer(Reducer):
    """Reducer that forwards every value of every key unchanged."""

    def reduce(self, key: Any, values: Iterable[Any], context: "TaskContext") -> None:
        for value in values:
            context.emit(key, value)


@dataclass
class JobSpec:
    """Complete description of a single MapReduce job.

    Attributes
    ----------
    name:
        Human-readable job name (appears in metrics and pipeline reports).
    mapper_factory / reducer_factory:
        Zero-argument callables returning fresh :class:`Mapper` /
        :class:`Reducer` instances.  Factories (rather than classes with
        required constructor arguments) keep per-task instantiation explicit.
    combiner_factory:
        Optional combiner applied to each map task's output.
    partitioner / sort_comparator:
        Shuffle customisation; defaults reproduce Hadoop's hash partitioning
        and natural key order.
    num_reducers:
        Number of reduce partitions (``R`` in the paper's partition function).
    num_map_tasks:
        Number of map tasks the input is divided into; ``None`` lets the
        runner pick one map task per input split.
    """

    name: str
    mapper_factory: Callable[[], Mapper]
    reducer_factory: Callable[[], Reducer]
    combiner_factory: Optional[Callable[[], Combiner]] = None
    partitioner: Partitioner = field(default_factory=Partitioner)
    sort_comparator: SortComparator = field(default_factory=SortComparator)
    num_reducers: int = 1
    num_map_tasks: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_reducers < 1:
            raise MapReduceError(f"job {self.name!r}: num_reducers must be >= 1")
        if self.num_map_tasks is not None and self.num_map_tasks < 1:
            raise MapReduceError(f"job {self.name!r}: num_map_tasks must be >= 1")

    def make_mapper(self) -> Mapper:
        """Instantiate a fresh mapper for one map task."""
        mapper = self.mapper_factory()
        if not isinstance(mapper, Mapper):
            raise MapReduceError(
                f"job {self.name!r}: mapper_factory returned {type(mapper).__name__}, "
                "expected a Mapper"
            )
        return mapper

    def make_reducer(self) -> Reducer:
        """Instantiate a fresh reducer for one reduce partition."""
        reducer = self.reducer_factory()
        if not isinstance(reducer, Reducer):
            raise MapReduceError(
                f"job {self.name!r}: reducer_factory returned {type(reducer).__name__}, "
                "expected a Reducer"
            )
        return reducer

    def make_combiner(self) -> Optional[Combiner]:
        """Instantiate the combiner, or return ``None`` when not configured."""
        if self.combiner_factory is None:
            return None
        combiner = self.combiner_factory()
        if not isinstance(combiner, Combiner):
            raise MapReduceError(
                f"job {self.name!r}: combiner_factory returned {type(combiner).__name__}, "
                "expected a Combiner"
            )
        return combiner


# Imported late to avoid a circular import at module load time; TaskContext is
# defined by the runner module but referenced in type hints above.
from repro.mapreduce.context import TaskContext  # noqa: E402  (re-export for typing)

__all__ = [
    "Combiner",
    "Emitter",
    "IdentityMapper",
    "IdentityReducer",
    "JobSpec",
    "Mapper",
    "Partitioner",
    "Reducer",
    "SortComparator",
    "TaskContext",
]
