"""Local execution of MapReduce jobs.

:class:`LocalJobRunner` executes a :class:`~repro.mapreduce.job.JobSpec`
in-process: it divides the input into map tasks, runs mappers (and the
optional combiner), shuffles with the job's partitioner and sort comparator,
and runs one reducer per partition.  It produces a :class:`JobResult` with
the job output, Hadoop-style counters and per-task metrics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import MapReduceError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.context import TaskContext
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobSpec
from repro.mapreduce.metrics import JobMetrics, TaskMetrics
from repro.mapreduce.serialization import record_size
from repro.mapreduce.shuffle import group_sorted_records, partition_records, sort_partition

Record = Tuple[Any, Any]


@dataclass
class JobResult:
    """Outcome of a single job run."""

    job_name: str
    output: List[Record]
    partition_output: List[List[Record]]
    counters: Counters
    metrics: JobMetrics
    elapsed_seconds: float = 0.0

    @property
    def output_keys(self) -> List[Any]:
        """Keys of the job output, in emission order."""
        return [key for key, _ in self.output]

    def output_as_dict(self) -> dict:
        """Job output as a dictionary (later emissions win on duplicate keys)."""
        return dict(self.output)

    def is_empty(self) -> bool:
        """Whether the job produced no output records."""
        return not self.output


@dataclass
class _MapPhaseResult:
    shuffle_records: List[Record] = field(default_factory=list)
    task_metrics: List[TaskMetrics] = field(default_factory=list)


def _split_input(records: Sequence[Record], num_splits: int) -> List[List[Record]]:
    """Divide input records into at most ``num_splits`` contiguous splits."""
    if not records:
        return [[]]
    num_splits = max(1, min(num_splits, len(records)))
    split_size, remainder = divmod(len(records), num_splits)
    splits: List[List[Record]] = []
    start = 0
    for index in range(num_splits):
        length = split_size + (1 if index < remainder else 0)
        splits.append(list(records[start : start + length]))
        start += length
    return splits


class LocalJobRunner:
    """Runs MapReduce jobs in the current process.

    Parameters
    ----------
    cache:
        The distributed cache shared with every task context.  A pipeline
        typically owns one cache and passes it to its runner.
    default_map_tasks:
        Number of map tasks used when a job does not specify its own.
    """

    def __init__(
        self,
        cache: Optional[DistributedCache] = None,
        default_map_tasks: int = 4,
    ) -> None:
        if default_map_tasks < 1:
            raise MapReduceError("default_map_tasks must be >= 1")
        self.cache = cache if cache is not None else DistributedCache()
        self.default_map_tasks = default_map_tasks

    # ------------------------------------------------------------------ map
    def _run_map_task(
        self,
        job: JobSpec,
        task_index: int,
        split: Sequence[Record],
        counters: Counters,
    ) -> Tuple[List[Record], TaskMetrics]:
        started = time.perf_counter()
        mapper = job.make_mapper()
        context = TaskContext(counters=counters, cache=self.cache)
        mapper.setup(context)
        for key, value in split:
            counters.increment(counter_names.MAP_INPUT_RECORDS)
            mapper.map(key, value, context)
        mapper.cleanup(context)
        emitted = context.drain()

        output_bytes = 0
        for key, value in emitted:
            output_bytes += record_size(key, value)
        counters.increment(counter_names.MAP_OUTPUT_RECORDS, len(emitted))
        counters.increment(counter_names.MAP_OUTPUT_BYTES, output_bytes)

        shuffle_records = emitted
        sorted_records = 0
        combiner = job.make_combiner()
        if combiner is not None and emitted:
            shuffle_records = self._run_combiner(job, combiner, emitted, counters)
            sorted_records = len(emitted)

        shuffle_bytes = sum(record_size(key, value) for key, value in shuffle_records)
        counters.increment(counter_names.SHUFFLE_RECORDS, len(shuffle_records))
        counters.increment(counter_names.SHUFFLE_BYTES, shuffle_bytes)

        metrics = TaskMetrics(
            task_type="map",
            task_index=task_index,
            input_records=len(split),
            output_records=len(emitted),
            output_bytes=output_bytes,
            sorted_records=sorted_records,
            elapsed_seconds=time.perf_counter() - started,
        )
        return shuffle_records, metrics

    def _run_combiner(
        self,
        job: JobSpec,
        combiner: Any,
        emitted: List[Record],
        counters: Counters,
    ) -> List[Record]:
        sorted_records = sort_partition(emitted, job.sort_comparator)
        context = TaskContext(counters=counters, cache=self.cache)
        combiner.setup(context)
        for key, values in group_sorted_records(sorted_records, job.sort_comparator):
            counters.increment(counter_names.COMBINE_INPUT_RECORDS, len(values))
            combiner.reduce(key, values, context)
        combiner.cleanup(context)
        combined = context.drain()
        counters.increment(counter_names.COMBINE_OUTPUT_RECORDS, len(combined))
        return combined

    # --------------------------------------------------------------- reduce
    def _run_reduce_task(
        self,
        job: JobSpec,
        task_index: int,
        partition: List[Record],
        counters: Counters,
    ) -> Tuple[List[Record], TaskMetrics]:
        started = time.perf_counter()
        sorted_partition = sort_partition(partition, job.sort_comparator)
        reducer = job.make_reducer()
        context = TaskContext(counters=counters, cache=self.cache)
        reducer.setup(context)
        groups = 0
        for key, values in group_sorted_records(sorted_partition, job.sort_comparator):
            groups += 1
            counters.increment(counter_names.REDUCE_INPUT_RECORDS, len(values))
            reducer.reduce(key, values, context)
        reducer.cleanup(context)
        counters.increment(counter_names.REDUCE_INPUT_GROUPS, groups)
        output = context.drain()
        counters.increment(counter_names.REDUCE_OUTPUT_RECORDS, len(output))
        output_bytes = sum(record_size(key, value) for key, value in output)
        metrics = TaskMetrics(
            task_type="reduce",
            task_index=task_index,
            input_records=len(sorted_partition),
            output_records=len(output),
            output_bytes=output_bytes,
            sorted_records=len(sorted_partition),
            elapsed_seconds=time.perf_counter() - started,
        )
        return output, metrics

    # ------------------------------------------------------------------ run
    def run(self, job: JobSpec, input_records: Iterable[Record]) -> JobResult:
        """Execute ``job`` over ``input_records`` and return its result."""
        started = time.perf_counter()
        records = list(input_records)
        counters = Counters()
        metrics = JobMetrics(job_name=job.name)

        num_map_tasks = job.num_map_tasks or self.default_map_tasks
        splits = _split_input(records, num_map_tasks)

        map_phase = _MapPhaseResult()
        for task_index, split in enumerate(splits):
            shuffle_records, task_metrics = self._run_map_task(job, task_index, split, counters)
            map_phase.shuffle_records.extend(shuffle_records)
            map_phase.task_metrics.append(task_metrics)
        metrics.map_tasks = map_phase.task_metrics

        partitions = partition_records(
            map_phase.shuffle_records, job.partitioner, job.num_reducers
        )

        output: List[Record] = []
        partition_output: List[List[Record]] = []
        for task_index, partition in enumerate(partitions):
            reduce_output, task_metrics = self._run_reduce_task(
                job, task_index, partition, counters
            )
            partition_output.append(reduce_output)
            output.extend(reduce_output)
            metrics.reduce_tasks.append(task_metrics)

        elapsed = time.perf_counter() - started
        metrics.elapsed_seconds = elapsed
        return JobResult(
            job_name=job.name,
            output=output,
            partition_output=partition_output,
            counters=counters,
            metrics=metrics,
            elapsed_seconds=elapsed,
        )
