"""Local execution of MapReduce jobs.

:class:`LocalJobRunner` executes a :class:`~repro.mapreduce.job.JobSpec`
in-process: it divides the input into map tasks, runs mappers (and the
optional combiner), shuffles with the job's partitioner and sort comparator,
and runs one reducer per partition.  It produces a :class:`JobResult` with
the job output, Hadoop-style counters and per-task metrics.

The shuffle runs through :class:`~repro.mapreduce.shuffle.ExternalShuffle`:
by default everything stays in memory, but with ``spill_threshold_bytes``
set the runner spills sorted runs of map output to temp files and streams
each reducer from a k-way merge, bounding the shuffle's memory ceiling
regardless of the input size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import MapReduceError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.context import TaskContext
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobSpec
from repro.mapreduce.metrics import JobMetrics, TaskMetrics
from repro.mapreduce.serialization import record_size
from repro.mapreduce.shuffle import (
    ExternalShuffle,
    PartitionInput,
    group_sorted_records,
    sort_partition,
)

Record = Tuple[Any, Any]

#: Input accepted by a reduce task: a raw (unsorted) record list or the
#: description of an externally shuffled partition.
ReduceInput = Union[Sequence[Record], PartitionInput]


@dataclass
class JobResult:
    """Outcome of a single job run."""

    job_name: str
    output: List[Record]
    partition_output: List[List[Record]]
    counters: Counters
    metrics: JobMetrics
    elapsed_seconds: float = 0.0

    @property
    def output_keys(self) -> List[Any]:
        """Keys of the job output, in emission order."""
        return [key for key, _ in self.output]

    def output_as_dict(self) -> dict:
        """Job output as a dictionary (later emissions win on duplicate keys)."""
        return dict(self.output)

    def is_empty(self) -> bool:
        """Whether the job produced no output records."""
        return not self.output


def _split_input(records: Sequence[Record], num_splits: int) -> List[List[Record]]:
    """Divide input records into at most ``num_splits`` contiguous splits."""
    if not records:
        return [[]]
    num_splits = max(1, min(num_splits, len(records)))
    split_size, remainder = divmod(len(records), num_splits)
    splits: List[List[Record]] = []
    start = 0
    for index in range(num_splits):
        length = split_size + (1 if index < remainder else 0)
        splits.append(list(records[start : start + length]))
        start += length
    return splits


class LocalJobRunner:
    """Runs MapReduce jobs in the current process.

    Parameters
    ----------
    cache:
        The distributed cache shared with every task context.  A pipeline
        typically owns one cache and passes it to its runner.
    default_map_tasks:
        Number of map tasks used when a job does not specify its own.
    spill_threshold_bytes:
        When set, the shuffle buffers at most this many (serialised) bytes
        in memory and spills sorted runs to disk past the budget; ``None``
        keeps the whole shuffle in memory.
    spill_dir:
        Directory for spilled runs (a private temp directory by default).
    """

    def __init__(
        self,
        cache: Optional[DistributedCache] = None,
        default_map_tasks: int = 4,
        spill_threshold_bytes: Optional[int] = None,
        spill_dir: Optional[str] = None,
    ) -> None:
        if default_map_tasks < 1:
            raise MapReduceError("default_map_tasks must be >= 1")
        if spill_threshold_bytes is not None and spill_threshold_bytes < 1:
            raise MapReduceError("spill_threshold_bytes must be >= 1 or None")
        self.cache = cache if cache is not None else DistributedCache()
        self.default_map_tasks = default_map_tasks
        self.spill_threshold_bytes = spill_threshold_bytes
        self.spill_dir = spill_dir

    # ------------------------------------------------------------------ map
    def _run_map_task(
        self,
        job: JobSpec,
        task_index: int,
        split: Sequence[Record],
        counters: Counters,
    ) -> Tuple[List[Record], TaskMetrics]:
        started = time.perf_counter()
        mapper = job.make_mapper()
        context = TaskContext(counters=counters, cache=self.cache)
        mapper.setup(context)
        for key, value in split:
            counters.increment(counter_names.MAP_INPUT_RECORDS)
            mapper.map(key, value, context)
        mapper.cleanup(context)
        emitted = context.drain()

        output_bytes = 0
        for key, value in emitted:
            output_bytes += record_size(key, value)
        counters.increment(counter_names.MAP_OUTPUT_RECORDS, len(emitted))
        counters.increment(counter_names.MAP_OUTPUT_BYTES, output_bytes)

        shuffle_records = emitted
        sorted_records = 0
        combiner = job.make_combiner()
        if combiner is not None and emitted:
            shuffle_records = self._run_combiner(job, combiner, emitted, counters)
            sorted_records = len(emitted)

        shuffle_bytes = sum(record_size(key, value) for key, value in shuffle_records)
        counters.increment(counter_names.SHUFFLE_RECORDS, len(shuffle_records))
        counters.increment(counter_names.SHUFFLE_BYTES, shuffle_bytes)

        metrics = TaskMetrics(
            task_type="map",
            task_index=task_index,
            input_records=len(split),
            output_records=len(emitted),
            output_bytes=output_bytes,
            sorted_records=sorted_records,
            elapsed_seconds=time.perf_counter() - started,
        )
        return shuffle_records, metrics

    def _run_combiner(
        self,
        job: JobSpec,
        combiner: Any,
        emitted: List[Record],
        counters: Counters,
    ) -> List[Record]:
        sorted_records = sort_partition(emitted, job.sort_comparator)
        context = TaskContext(counters=counters, cache=self.cache)
        combiner.setup(context)
        for key, values in group_sorted_records(sorted_records, job.sort_comparator):
            counters.increment(counter_names.COMBINE_INPUT_RECORDS, len(values))
            combiner.reduce(key, values, context)
        combiner.cleanup(context)
        combined = context.drain()
        counters.increment(counter_names.COMBINE_OUTPUT_RECORDS, len(combined))
        return combined

    # --------------------------------------------------------------- reduce
    def _sorted_reduce_stream(self, job: JobSpec, partition: ReduceInput) -> Iterator[Record]:
        """The partition's records in sort order, streamed when spilled."""
        if isinstance(partition, PartitionInput):
            return partition.sorted_records(job.sort_comparator)
        return iter(sort_partition(list(partition), job.sort_comparator))

    def _run_reduce_task(
        self,
        job: JobSpec,
        task_index: int,
        partition: ReduceInput,
        counters: Counters,
    ) -> Tuple[List[Record], TaskMetrics]:
        started = time.perf_counter()
        sorted_stream = self._sorted_reduce_stream(job, partition)
        reducer = job.make_reducer()
        context = TaskContext(counters=counters, cache=self.cache)
        reducer.setup(context)
        groups = 0
        input_records = 0
        for key, values in group_sorted_records(sorted_stream, job.sort_comparator):
            groups += 1
            input_records += len(values)
            counters.increment(counter_names.REDUCE_INPUT_RECORDS, len(values))
            reducer.reduce(key, values, context)
        reducer.cleanup(context)
        counters.increment(counter_names.REDUCE_INPUT_GROUPS, groups)
        output = context.drain()
        counters.increment(counter_names.REDUCE_OUTPUT_RECORDS, len(output))
        output_bytes = sum(record_size(key, value) for key, value in output)
        metrics = TaskMetrics(
            task_type="reduce",
            task_index=task_index,
            input_records=input_records,
            output_records=len(output),
            output_bytes=output_bytes,
            sorted_records=input_records,
            elapsed_seconds=time.perf_counter() - started,
        )
        return output, metrics

    # -------------------------------------------------------------- shuffle
    def _new_shuffle(self, job: JobSpec) -> ExternalShuffle:
        """The shuffle for one job run (spilling iff a threshold is set)."""
        return ExternalShuffle(
            job.partitioner,
            job.sort_comparator,
            job.num_reducers,
            spill_threshold_bytes=self.spill_threshold_bytes,
            spill_dir=self.spill_dir,
        )

    @staticmethod
    def _record_spill_counters(shuffle: ExternalShuffle, counters: Counters) -> None:
        """Publish spill activity; no-spill runs keep their counter set unchanged."""
        if not shuffle.spilled:
            return
        counters.increment(counter_names.SHUFFLE_SPILLS, shuffle.stats.num_spills)
        counters.increment(counter_names.SPILLED_RECORDS, shuffle.stats.spilled_records)
        counters.increment(counter_names.SPILLED_BYTES, shuffle.stats.spilled_bytes)

    # ------------------------------------------------------------------ run
    def run(self, job: JobSpec, input_records: Iterable[Record]) -> JobResult:
        """Execute ``job`` over ``input_records`` and return its result."""
        started = time.perf_counter()
        records = list(input_records)
        counters = Counters()
        metrics = JobMetrics(job_name=job.name)

        num_map_tasks = job.num_map_tasks or self.default_map_tasks
        splits = _split_input(records, num_map_tasks)

        shuffle = self._new_shuffle(job)
        try:
            for task_index, split in enumerate(splits):
                shuffle_records, task_metrics = self._run_map_task(
                    job, task_index, split, counters
                )
                shuffle.add_records(shuffle_records)
                metrics.map_tasks.append(task_metrics)
            shuffle.finalize()
            self._record_spill_counters(shuffle, counters)

            output: List[Record] = []
            partition_output: List[List[Record]] = []
            for task_index, partition in enumerate(shuffle.partition_inputs()):
                reduce_output, task_metrics = self._run_reduce_task(
                    job, task_index, partition, counters
                )
                partition_output.append(reduce_output)
                output.extend(reduce_output)
                metrics.reduce_tasks.append(task_metrics)
        finally:
            shuffle.cleanup()

        elapsed = time.perf_counter() - started
        metrics.elapsed_seconds = elapsed
        return JobResult(
            job_name=job.name,
            output=output,
            partition_output=partition_output,
            counters=counters,
            metrics=metrics,
            elapsed_seconds=elapsed,
        )
