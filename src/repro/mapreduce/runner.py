"""Local execution of MapReduce jobs.

:class:`LocalJobRunner` executes a :class:`~repro.mapreduce.job.JobSpec`
in-process: it plans map splits over the input dataset, runs mappers (and
the optional combiner), shuffles with the job's partitioner and sort
comparator, and runs one reducer per partition.  It produces a
:class:`JobResult` whose outputs are :class:`~repro.mapreduce.dataset.Dataset`
objects, plus Hadoop-style counters and per-task metrics.

Job I/O streams through the dataset layer end to end:

* input is any iterable or :class:`~repro.mapreduce.dataset.Dataset`; a
  sharded :class:`~repro.mapreduce.dataset.FileDataset` is split per shard
  from its record counts alone, so the runner never materialises it;
* with ``materialize="disk"`` every reduce partition is written as one
  shard of the job's output :class:`FileDataset` while the reducer runs —
  in memory mode outputs stay plain record lists, exactly as before;
* the shuffle runs through :class:`~repro.mapreduce.shuffle.ExternalShuffle`:
  with ``spill_threshold_bytes`` set the runner spills sorted runs of map
  output to temp files and streams each reducer from a k-way merge,
  bounding the shuffle's memory ceiling regardless of the input size.

All materialisation choices are byte-transparent: task boundaries, record
order and counter totals are identical whether data lives in memory or on
disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.config import MATERIALIZE_MODES
from repro.exceptions import MapReduceError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.context import CountingSink, TaskContext
from repro.mapreduce.counters import Counters
from repro.mapreduce.dataset import (
    Dataset,
    DatasetStorage,
    FileDataset,
    ListSink,
    MemoryDataset,
    Shard,
    ShardSink,
    as_dataset,
)
from repro.mapreduce.job import JobSpec
from repro.mapreduce.metrics import JobMetrics, TaskMetrics
from repro.mapreduce.serialization import record_size
from repro.mapreduce.shuffle import (
    CombineBuffer,
    ExternalShuffle,
    PartitionInput,
    group_sorted_records,
    sort_partition,
)
from repro.util.codecs import get_codec

Record = Tuple[Any, Any]

#: Input accepted by a reduce task: a raw (unsorted) record list or the
#: description of an externally shuffled partition.
ReduceInput = Union[Sequence[Record], PartitionInput]

#: What a finished reduce task hands back: its record list (memory mode) or
#: the shards its output was written to (disk mode).
ReduceOutcome = Union[List[Record], Tuple[Shard, ...]]


@dataclass
class JobResult:
    """Outcome of a single job run.

    Outputs are datasets; the :attr:`output` / :attr:`partition_output`
    properties materialise them for convenience (and backward
    compatibility), while :meth:`iter_output` streams records without ever
    holding the full result — the only access pattern that keeps a
    disk-materialised result out of memory.
    """

    job_name: str
    output_dataset: Dataset
    partition_datasets: List[Dataset]
    counters: Counters
    metrics: JobMetrics
    elapsed_seconds: float = 0.0

    @property
    def output(self) -> List[Record]:
        """The job output as one materialised record list."""
        return self.output_dataset.to_list()

    @property
    def partition_output(self) -> List[List[Record]]:
        """Per-reduce-partition output, materialised."""
        return [dataset.to_list() for dataset in self.partition_datasets]

    def iter_output(self) -> Iterator[Record]:
        """Stream the job output in partition order."""
        return self.output_dataset.iter_records()

    @property
    def num_output_records(self) -> int:
        return self.output_dataset.num_records

    @property
    def output_keys(self) -> List[Any]:
        """Keys of the job output, in emission order."""
        return [key for key, _ in self.iter_output()]

    def output_as_dict(self) -> dict:
        """Job output as a dictionary (later emissions win on duplicate keys)."""
        return dict(self.iter_output())

    def is_empty(self) -> bool:
        """Whether the job produced no output records."""
        return self.output_dataset.num_records == 0

    # ------------------------------------------------------------ retention
    def release_output(self) -> None:
        """Drop the job's output records (counters and metrics are kept)."""
        for dataset in self.partition_datasets:
            dataset.release()
        self.output_dataset.release()

    @property
    def output_released(self) -> bool:
        return self.output_dataset.released


class LocalJobRunner:
    """Runs MapReduce jobs in the current process.

    Parameters
    ----------
    cache:
        The distributed cache shared with every task context.  A pipeline
        typically owns one cache and passes it to its runner.
    default_map_tasks:
        Number of map tasks used when a job does not specify its own.
    spill_threshold_bytes:
        When set, the shuffle buffers at most this many (serialised) bytes
        in memory and spills sorted runs to disk past the budget; ``None``
        keeps the whole shuffle in memory.
    spill_threshold_records:
        Record-count spill budget; the shuffle spills when either
        configured budget (bytes or records) is exceeded.
    spill_dir:
        Directory for spilled runs (a private temp directory by default).
    shard_codec:
        Stream-compression codec for shard files and spill runs
        (``"none"``/``"gzip"``/``"zstd"``, see :mod:`repro.util.codecs`).
    materialize:
        ``"memory"`` (default) keeps job outputs as record lists;
        ``"disk"`` writes each reduce partition as one shard of an on-disk
        output dataset and materialises streamed inputs as sharded files.
    dataset_dir:
        Directory for disk-materialised datasets (a private temp directory
        by default).
    """

    def __init__(
        self,
        cache: Optional[DistributedCache] = None,
        default_map_tasks: int = 4,
        spill_threshold_bytes: Optional[int] = None,
        spill_threshold_records: Optional[int] = None,
        spill_dir: Optional[str] = None,
        shard_codec: str = "none",
        materialize: str = "memory",
        dataset_dir: Optional[str] = None,
    ) -> None:
        if default_map_tasks < 1:
            raise MapReduceError("default_map_tasks must be >= 1")
        if spill_threshold_bytes is not None and spill_threshold_bytes < 1:
            raise MapReduceError("spill_threshold_bytes must be >= 1 or None")
        if spill_threshold_records is not None and spill_threshold_records < 1:
            raise MapReduceError("spill_threshold_records must be >= 1 or None")
        if materialize not in MATERIALIZE_MODES:
            raise MapReduceError(
                f"materialize must be one of {', '.join(MATERIALIZE_MODES)}, "
                f"got {materialize!r}"
            )
        # Resolve eagerly so an unknown/unavailable codec fails at runner
        # construction, not in the middle of a job's first spill.
        get_codec(shard_codec)
        self.cache = cache if cache is not None else DistributedCache()
        self.default_map_tasks = default_map_tasks
        self.spill_threshold_bytes = spill_threshold_bytes
        self.spill_threshold_records = spill_threshold_records
        self.spill_dir = spill_dir
        self.shard_codec = shard_codec
        self.materialize = materialize
        self.dataset_dir = dataset_dir
        self._storage: Optional[DatasetStorage] = None

    # ------------------------------------------------------------- datasets
    def _dataset_storage(self) -> DatasetStorage:
        if self._storage is None:
            self._storage = DatasetStorage(self.dataset_dir)
        return self._storage

    def materialize_dataset(self, records: Iterable[Record], name: str = "dataset") -> Dataset:
        """Materialise a record stream under this runner's policy.

        Memory mode buffers into a :class:`MemoryDataset`; disk mode
        streams the records into shard files and returns the resulting
        :class:`FileDataset`, so the stream is never held in memory.
        """
        if isinstance(records, Dataset) or self.materialize != "disk":
            # Passthrough (with the released-dataset guard) or memory buffering.
            return as_dataset(records)
        return FileDataset.write(
            records, storage=self._dataset_storage(), name=name, codec=self.shard_codec
        )

    def _make_reduce_sink(self, job: JobSpec, task_index: int) -> Optional[ShardSink]:
        """The output sink for one reduce task (``None`` selects buffering)."""
        if self.materialize != "disk":
            return None
        path = self._dataset_storage().allocate(f"{job.name}-part-{task_index:05d}")
        return ShardSink(path, codec=self.shard_codec)

    def _bundle_outputs(
        self, outcomes: List[ReduceOutcome]
    ) -> Tuple[Dataset, List[Dataset]]:
        """Assemble reduce outcomes into the job's output datasets.

        The job-wide output dataset and the per-partition views share the
        same backing (lists or shard files), so no records are duplicated.
        """
        first = outcomes[0] if outcomes else None
        if isinstance(first, tuple) and first and isinstance(first[0], Shard):
            partition_datasets: List[Dataset] = [
                FileDataset(shards, storage=self._storage) for shards in outcomes
            ]
            output_dataset: Dataset = FileDataset(
                [shard for shards in outcomes for shard in shards],
                storage=self._storage,
            )
        else:
            partition_datasets = [MemoryDataset(records) for records in outcomes]
            output_dataset = MemoryDataset(
                [record for records in outcomes for record in records]
            )
        return output_dataset, partition_datasets

    # ------------------------------------------------------------------ map
    def _run_map_task(
        self,
        job: JobSpec,
        task_index: int,
        split: Iterable[Record],
        counters: Counters,
        shuffle: Optional[ExternalShuffle] = None,
    ) -> Tuple[Optional[List[Record]], TaskMetrics]:
        """Run one map task over ``split``.

        With ``shuffle`` given, emissions stream out of the task as they
        are produced — straight into the shuffle when no combiner is
        configured, or through a budget-bounded :class:`CombineBuffer`
        otherwise — and the returned record list is ``None``.  Without a
        shuffle (the pooled backends collecting task output to route in
        task order) the task's (possibly combined) output is returned for
        the caller to route.  Counter totals are identical either way.
        """
        started = time.perf_counter()
        mapper = job.make_mapper()
        has_combiner = job.combiner_factory is not None
        collected: Optional[List[Record]] = None

        combine_buffer: Optional[CombineBuffer] = None
        sink: Optional[Any] = None
        if has_combiner:
            if shuffle is not None:
                downstream = shuffle.add
            else:
                collected = []
                downstream = lambda key, value: collected.append((key, value))  # noqa: E731
            combine_buffer = CombineBuffer(
                job,
                counters=counters,
                cache=self.cache,
                output=downstream,
                spill_threshold_bytes=self.spill_threshold_bytes,
                spill_threshold_records=self.spill_threshold_records,
            )
            sink = combine_buffer
        elif shuffle is not None:
            sink = CountingSink(shuffle.add)

        context = TaskContext(counters=counters, cache=self.cache, sink=sink)
        mapper.setup(context)
        input_records = 0
        for key, value in split:
            input_records += 1
            counters.increment(counter_names.MAP_INPUT_RECORDS)
            mapper.map(key, value, context)
        mapper.cleanup(context)

        if combine_buffer is not None:
            combine_buffer.flush()
            counters.increment(
                counter_names.MAP_OUTPUT_RECORDS, combine_buffer.emitted_records
            )
            counters.increment(counter_names.MAP_OUTPUT_BYTES, combine_buffer.emitted_bytes)
            counters.increment(
                counter_names.SHUFFLE_RECORDS, combine_buffer.combined_records
            )
            counters.increment(counter_names.SHUFFLE_BYTES, combine_buffer.combined_bytes)
            metrics = TaskMetrics(
                task_type="map",
                task_index=task_index,
                input_records=input_records,
                output_records=combine_buffer.emitted_records,
                output_bytes=combine_buffer.emitted_bytes,
                sorted_records=combine_buffer.sorted_records,
                elapsed_seconds=time.perf_counter() - started,
            )
            return collected, metrics

        if sink is not None:
            counters.increment(counter_names.MAP_OUTPUT_RECORDS, sink.num_records)
            counters.increment(counter_names.MAP_OUTPUT_BYTES, sink.serialized_bytes)
            counters.increment(counter_names.SHUFFLE_RECORDS, sink.num_records)
            counters.increment(counter_names.SHUFFLE_BYTES, sink.serialized_bytes)
            metrics = TaskMetrics(
                task_type="map",
                task_index=task_index,
                input_records=input_records,
                output_records=sink.num_records,
                output_bytes=sink.serialized_bytes,
                sorted_records=0,
                elapsed_seconds=time.perf_counter() - started,
            )
            return None, metrics

        emitted = context.drain()
        output_bytes = 0
        for key, value in emitted:
            output_bytes += record_size(key, value)
        counters.increment(counter_names.MAP_OUTPUT_RECORDS, len(emitted))
        counters.increment(counter_names.MAP_OUTPUT_BYTES, output_bytes)
        counters.increment(counter_names.SHUFFLE_RECORDS, len(emitted))
        counters.increment(counter_names.SHUFFLE_BYTES, output_bytes)

        metrics = TaskMetrics(
            task_type="map",
            task_index=task_index,
            input_records=input_records,
            output_records=len(emitted),
            output_bytes=output_bytes,
            sorted_records=0,
            elapsed_seconds=time.perf_counter() - started,
        )
        return emitted, metrics

    # --------------------------------------------------------------- reduce
    def _sorted_reduce_stream(self, job: JobSpec, partition: ReduceInput) -> Iterator[Record]:
        """The partition's records in sort order, streamed when spilled."""
        if isinstance(partition, PartitionInput):
            return partition.sorted_records(job.sort_comparator)
        return iter(sort_partition(list(partition), job.sort_comparator))

    def _run_reduce_task(
        self,
        job: JobSpec,
        task_index: int,
        partition: ReduceInput,
        counters: Counters,
        output_sink: Optional[Any] = None,
    ) -> Tuple[ReduceOutcome, TaskMetrics]:
        """Run one reduce task; its output flows through ``output_sink``.

        The default :class:`ListSink` buffers the partition output in
        memory and the outcome is the record list; a :class:`ShardSink`
        frames each emission straight to a shard file and the outcome is
        the finished :class:`Shard`.
        """
        started = time.perf_counter()
        sorted_stream = self._sorted_reduce_stream(job, partition)
        reducer = job.make_reducer()
        sink = output_sink if output_sink is not None else ListSink()
        sink.begin()
        try:
            context = TaskContext(counters=counters, cache=self.cache, sink=sink)
            reducer.setup(context)
            groups = 0
            input_records = 0
            for key, values in group_sorted_records(sorted_stream, job.sort_comparator):
                groups += 1
                input_records += len(values)
                counters.increment(counter_names.REDUCE_INPUT_RECORDS, len(values))
                reducer.reduce(key, values, context)
            reducer.cleanup(context)
        except BaseException:
            # Close (and for shard sinks, remove) the partial output so a
            # failing reducer leaks neither a file handle nor an orphan shard.
            sink.abort()
            raise
        counters.increment(counter_names.REDUCE_INPUT_GROUPS, groups)
        outcome = sink.finish()
        counters.increment(counter_names.REDUCE_OUTPUT_RECORDS, sink.num_records)
        metrics = TaskMetrics(
            task_type="reduce",
            task_index=task_index,
            input_records=input_records,
            output_records=sink.num_records,
            output_bytes=sink.serialized_bytes,
            sorted_records=input_records,
            elapsed_seconds=time.perf_counter() - started,
        )
        return outcome, metrics

    # -------------------------------------------------------------- shuffle
    def _new_shuffle(self, job: JobSpec) -> ExternalShuffle:
        """The shuffle for one job run (spilling iff a threshold is set)."""
        return ExternalShuffle(
            job.partitioner,
            job.sort_comparator,
            job.num_reducers,
            spill_threshold_bytes=self.spill_threshold_bytes,
            spill_threshold_records=self.spill_threshold_records,
            spill_dir=self.spill_dir,
            codec=self.shard_codec,
        )

    @staticmethod
    def _record_spill_counters(shuffle: ExternalShuffle, counters: Counters) -> None:
        """Publish spill activity; no-spill runs keep their counter set unchanged."""
        if not shuffle.spilled:
            return
        counters.increment(counter_names.SHUFFLE_SPILLS, shuffle.stats.num_spills)
        counters.increment(counter_names.SPILLED_RECORDS, shuffle.stats.spilled_records)
        counters.increment(counter_names.SPILLED_BYTES, shuffle.stats.spilled_bytes)

    # ------------------------------------------------------------------ run
    def run(self, job: JobSpec, input_records: Union[Dataset, Iterable[Record]]) -> JobResult:
        """Execute ``job`` over ``input_records`` and return its result."""
        started = time.perf_counter()
        dataset = as_dataset(input_records)
        counters = Counters()
        metrics = JobMetrics(job_name=job.name)

        num_map_tasks = job.num_map_tasks or self.default_map_tasks
        splits = dataset.split(num_map_tasks)

        shuffle = self._new_shuffle(job)
        try:
            for task_index, split in enumerate(splits):
                shuffle_records, task_metrics = self._run_map_task(
                    job, task_index, split, counters, shuffle=shuffle
                )
                if shuffle_records is not None:
                    shuffle.add_records(shuffle_records)
                metrics.map_tasks.append(task_metrics)
            shuffle.finalize()
            self._record_spill_counters(shuffle, counters)

            outcomes: List[ReduceOutcome] = []
            for task_index, partition in enumerate(shuffle.partition_inputs()):
                outcome, task_metrics = self._run_reduce_task(
                    job,
                    task_index,
                    partition,
                    counters,
                    output_sink=self._make_reduce_sink(job, task_index),
                )
                outcomes.append(outcome)
                metrics.reduce_tasks.append(task_metrics)
        finally:
            shuffle.cleanup()

        output_dataset, partition_datasets = self._bundle_outputs(outcomes)
        elapsed = time.perf_counter() - started
        metrics.elapsed_seconds = elapsed
        return JobResult(
            job_name=job.name,
            output_dataset=output_dataset,
            partition_datasets=partition_datasets,
            counters=counters,
            metrics=metrics,
            elapsed_seconds=elapsed,
        )
