"""A concurrent job runner executing map and reduce tasks in a thread pool.

The sequential :class:`~repro.mapreduce.runner.LocalJobRunner` executes one
task at a time; :class:`ThreadPoolJobRunner` runs the independent tasks of
each phase concurrently, which is how a real cluster (or a multi-core
machine) would process them.  Results are identical to the sequential
runner: tasks only touch task-local state, each task gets its own
:class:`~repro.mapreduce.counters.Counters` instance (merged in task order
afterwards, so totals are deterministic), and the shuffle runs only after
*all* map tasks have completed — the same barrier Hadoop enforces.

CPython's GIL limits the speed-up for the pure-Python mappers and reducers in
this package, so the sequential runner remains the default; this runner
exists to demonstrate (and test) that the engine's task model is safely
parallelisable.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import MapReduceError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobSpec
from repro.mapreduce.metrics import JobMetrics, TaskMetrics
from repro.mapreduce.runner import JobResult, LocalJobRunner, _split_input
from repro.mapreduce.shuffle import partition_records

Record = Tuple[Any, Any]


class ThreadPoolJobRunner(LocalJobRunner):
    """Drop-in replacement for :class:`LocalJobRunner` with concurrent tasks."""

    def __init__(
        self,
        cache: Optional[DistributedCache] = None,
        default_map_tasks: int = 4,
        max_workers: int = 4,
    ) -> None:
        super().__init__(cache=cache, default_map_tasks=default_map_tasks)
        if max_workers < 1:
            raise MapReduceError("max_workers must be >= 1")
        self.max_workers = max_workers

    def _run_phase(
        self,
        task_function,
        job: JobSpec,
        task_inputs: Sequence,
    ) -> Tuple[List[List[Record]], List[TaskMetrics], List[Counters]]:
        """Run one phase's tasks concurrently with per-task counters."""
        task_counters = [Counters() for _ in task_inputs]
        with ThreadPoolExecutor(max_workers=self.max_workers) as executor:
            futures = [
                executor.submit(task_function, job, index, task_input, task_counters[index])
                for index, task_input in enumerate(task_inputs)
            ]
            results = [future.result() for future in futures]
        records = [records for records, _ in results]
        metrics = [metrics for _, metrics in results]
        return records, metrics, task_counters

    def run(self, job: JobSpec, input_records: Iterable[Record]) -> JobResult:
        started = time.perf_counter()
        records = list(input_records)
        counters = Counters()
        metrics = JobMetrics(job_name=job.name)

        num_map_tasks = job.num_map_tasks or self.default_map_tasks
        splits = _split_input(records, num_map_tasks)

        map_records, map_metrics, map_counters = self._run_phase(
            self._run_map_task, job, splits
        )
        metrics.map_tasks = map_metrics
        for task_counters in map_counters:
            counters.merge(task_counters)
        shuffle_records: List[Record] = [
            record for task_records in map_records for record in task_records
        ]

        partitions = partition_records(shuffle_records, job.partitioner, job.num_reducers)

        reduce_records, reduce_metrics, reduce_counters = self._run_phase(
            self._run_reduce_task, job, partitions
        )
        metrics.reduce_tasks = reduce_metrics
        for task_counters in reduce_counters:
            counters.merge(task_counters)

        output: List[Record] = [
            record for task_records in reduce_records for record in task_records
        ]

        elapsed = time.perf_counter() - started
        metrics.elapsed_seconds = elapsed
        return JobResult(
            job_name=job.name,
            output=output,
            partition_output=reduce_records,
            counters=counters,
            metrics=metrics,
            elapsed_seconds=elapsed,
        )
