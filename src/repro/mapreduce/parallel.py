"""Concurrent job runners: the pooled execution template and the thread pool.

The sequential :class:`~repro.mapreduce.runner.LocalJobRunner` executes one
task at a time; :class:`PooledJobRunner` is the shared skeleton for backends
that run the independent tasks of each phase concurrently, the way a real
cluster (or a multi-core machine) would process them.  Results are identical
to the sequential runner: tasks only touch task-local state, each task gets
its own :class:`~repro.mapreduce.counters.Counters` instance (merged in task
order, so totals are deterministic), and the shuffle runs only after *all*
map tasks have completed — the same barrier Hadoop enforces.  Map results
stream into the shuffle as tasks complete, so spilled map output never
piles up in a phase-wide results list.

Task failures are wrapped in :class:`~repro.exceptions.MapReduceError`
carrying the job name, phase and task index, so a crashing mapper surfaces
as an engine error with task identity instead of a bare traceback from a
worker thread; on the first failure the remaining tasks of the phase are
cancelled.

:class:`ThreadPoolJobRunner` is the thread-pool instantiation of the
template.  CPython's GIL limits its speed-up for the pure-Python mappers
and reducers in this package, so the sequential runner remains the default;
the process-based :class:`~repro.mapreduce.process.ProcessPoolJobRunner`
(the other instantiation) is the backend that actually uses multiple cores.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, Future, ThreadPoolExecutor
from typing import Any, Iterable, Iterator, List, Optional, Tuple, Union

from repro.exceptions import MapReduceError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.counters import Counters
from repro.mapreduce.dataset import Dataset, as_dataset
from repro.mapreduce.job import JobSpec
from repro.mapreduce.metrics import JobMetrics, TaskMetrics
from repro.mapreduce.runner import JobResult, LocalJobRunner, ReduceInput, ReduceOutcome
from repro.mapreduce.shuffle import ExternalShuffle, MapTaskSpills

Record = Tuple[Any, Any]

#: What every pooled task resolves to: the task's records (map) or outcome
#: (reduce), its metrics and the counters it incremented (merged by the
#: parent in task order).
TaskResult = Tuple[Any, TaskMetrics, Counters]


def _cancel_pending(futures: List[Optional[Future]], start: int) -> None:
    for pending in futures[start:]:
        if pending is not None:
            pending.cancel()


def iter_task_results(
    futures: List[Optional[Future]],
    job: JobSpec,
    phase: str,
) -> Iterator[Any]:
    """Yield task results in submission order, wrapping failures.

    Each future's slot is cleared as soon as its result is consumed, so the
    caller can stream large task outputs (e.g. map records into the shuffle)
    without the whole phase's results staying referenced from the list.

    On the first failing task the remaining futures are cancelled (tasks
    already running finish, as in Hadoop's job teardown) and the failure is
    re-raised as a :class:`MapReduceError` identifying the job, phase and
    task — the contract shared by the thread- and process-based runners.
    """
    for index in range(len(futures)):
        future = futures[index]
        assert future is not None
        try:
            result = future.result()
        except MapReduceError:
            _cancel_pending(futures, index + 1)
            raise
        except Exception as exc:
            _cancel_pending(futures, index + 1)
            raise MapReduceError(
                f"job {job.name!r}: {phase} task {index} failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        futures[index] = None
        yield result


class PooledJobRunner(LocalJobRunner):
    """Template for executor-pool backends; subclasses supply the pool.

    A subclass implements :meth:`_make_phase_executor` and
    :meth:`_submit_task` (and optionally :meth:`_prepare_job`, e.g. to
    serialise the job for worker processes); the template contributes the
    phase orchestration, deterministic counter merging, shuffle streaming
    and the shared failure contract — so the backends cannot drift apart.
    """

    # ------------------------------------------------------ subclass hooks
    def _prepare_job(self, job: JobSpec) -> None:
        """Called once per run before any task is submitted."""

    def _prepare_shuffle(self, shuffle: ExternalShuffle) -> None:
        """Called once per run with the job's shuffle, before map tasks.

        The process backend uses it to materialise the shuffle's run
        directory so worker-local partial shuffles can spill under it.
        """

    def _route_map_output(self, shuffle: ExternalShuffle, task_output: Any) -> None:
        """Fold one completed map task's output into the shuffle.

        Tasks hand back either their record list (added to the shuffle's
        buffers) or a :class:`~repro.mapreduce.shuffle.MapTaskSpills`
        describing runs they already partitioned and spilled worker-side
        (adopted as run paths — the records never reach this process).
        Called in task order, which is what keeps the merge stable and the
        output byte-identical to sequential execution.
        """
        if task_output is None:
            return
        if isinstance(task_output, MapTaskSpills):
            shuffle.adopt_runs(task_output.run_paths, task_output.stats)
        else:
            shuffle.add_records(task_output)

    def _make_phase_executor(self, num_tasks: int) -> Executor:
        raise NotImplementedError

    def _submit_task(
        self,
        executor: Executor,
        job: JobSpec,
        phase: str,
        task_index: int,
        task_input: Any,
        reduce_sink: Optional[Any] = None,
    ) -> Future[TaskResult]:
        raise NotImplementedError

    # ------------------------------------------------------------------ run
    def run(self, job: JobSpec, input_records: Union[Dataset, Iterable[Record]]) -> JobResult:
        started = time.perf_counter()
        dataset = as_dataset(input_records)
        counters = Counters()
        metrics = JobMetrics(job_name=job.name)
        self._prepare_job(job)

        num_map_tasks = job.num_map_tasks or self.default_map_tasks
        splits = dataset.split(num_map_tasks)

        shuffle = self._new_shuffle(job)
        try:
            self._prepare_shuffle(shuffle)
            num_tasks = max(len(splits), job.num_reducers)
            with self._make_phase_executor(num_tasks) as executor:
                futures: List[Optional[Future]] = [
                    self._submit_task(executor, job, "map", index, split)
                    for index, split in enumerate(splits)
                ]
                try:
                    for task_records, task_metrics, task_counters in iter_task_results(
                        futures, job, "map"
                    ):
                        self._route_map_output(shuffle, task_records)
                        metrics.map_tasks.append(task_metrics)
                        counters.merge(task_counters)
                except MapReduceError:
                    # Task failures arrive pre-wrapped (and pending tasks
                    # cancelled); shuffle errors are wrapped below.
                    _cancel_pending(futures, 0)
                    raise
                except Exception as exc:
                    _cancel_pending(futures, 0)
                    raise MapReduceError(
                        f"job {job.name!r}: shuffle failed during the map phase: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                shuffle.finalize()
                self._record_spill_counters(shuffle, counters)

                reduce_inputs: List[ReduceInput] = shuffle.partition_inputs()
                futures = [
                    self._submit_task(
                        executor,
                        job,
                        "reduce",
                        index,
                        partition,
                        reduce_sink=self._make_reduce_sink(job, index),
                    )
                    for index, partition in enumerate(reduce_inputs)
                ]
                outcomes: List[ReduceOutcome] = []
                for outcome, task_metrics, task_counters in iter_task_results(
                    futures, job, "reduce"
                ):
                    outcomes.append(outcome)
                    metrics.reduce_tasks.append(task_metrics)
                    counters.merge(task_counters)
        finally:
            shuffle.cleanup()

        output_dataset, partition_datasets = self._bundle_outputs(outcomes)
        elapsed = time.perf_counter() - started
        metrics.elapsed_seconds = elapsed
        return JobResult(
            job_name=job.name,
            output_dataset=output_dataset,
            partition_datasets=partition_datasets,
            counters=counters,
            metrics=metrics,
            elapsed_seconds=elapsed,
        )


class ThreadPoolJobRunner(PooledJobRunner):
    """Drop-in replacement for :class:`LocalJobRunner` with concurrent tasks."""

    def __init__(
        self,
        cache: Optional[DistributedCache] = None,
        default_map_tasks: int = 4,
        max_workers: int = 4,
        spill_threshold_bytes: Optional[int] = None,
        spill_threshold_records: Optional[int] = None,
        spill_dir: Optional[str] = None,
        shard_codec: str = "none",
        materialize: str = "memory",
        dataset_dir: Optional[str] = None,
    ) -> None:
        super().__init__(
            cache=cache,
            default_map_tasks=default_map_tasks,
            spill_threshold_bytes=spill_threshold_bytes,
            spill_threshold_records=spill_threshold_records,
            spill_dir=spill_dir,
            shard_codec=shard_codec,
            materialize=materialize,
            dataset_dir=dataset_dir,
        )
        if max_workers < 1:
            raise MapReduceError("max_workers must be >= 1")
        self.max_workers = max_workers

    def _make_phase_executor(self, num_tasks: int) -> Executor:
        return ThreadPoolExecutor(max_workers=self.max_workers)

    def _run_map_with_counters(
        self, job: JobSpec, task_index: int, task_input: Any
    ) -> TaskResult:
        counters = Counters()
        records, task_metrics = self._run_map_task(job, task_index, task_input, counters)
        return records, task_metrics, counters

    def _run_reduce_with_counters(
        self, job: JobSpec, task_index: int, task_input: Any, reduce_sink: Optional[Any]
    ) -> TaskResult:
        counters = Counters()
        outcome, task_metrics = self._run_reduce_task(
            job, task_index, task_input, counters, output_sink=reduce_sink
        )
        return outcome, task_metrics, counters

    def _submit_task(
        self,
        executor: Executor,
        job: JobSpec,
        phase: str,
        task_index: int,
        task_input: Any,
        reduce_sink: Optional[Any] = None,
    ) -> Future[TaskResult]:
        if phase == "map":
            return executor.submit(self._run_map_with_counters, job, task_index, task_input)
        return executor.submit(
            self._run_reduce_with_counters, job, task_index, task_input, reduce_sink
        )
