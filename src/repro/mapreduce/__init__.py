"""An in-process MapReduce engine modelled on Hadoop.

The engine exists so that the paper's algorithms can be written against the
same contract they were designed for — ``map()``, ``reduce()``, an optional
combiner, a custom partitioner and a custom sort comparator — while running
on a single machine.  It reproduces the quantities the paper measures:

* ``MAP_OUTPUT_RECORDS`` and ``MAP_OUTPUT_BYTES`` counters at the shuffle
  boundary (Figures 4 and 5, panels (b), (c), (e), (f));
* the number of MapReduce jobs a method launches (the per-job fixed cost the
  paper attributes to the APRIORI methods);
* per-task work, which feeds the simulated-cluster wallclock model used for
  the resource-scaling experiment (Figure 7).

Execution backends
------------------

Three interchangeable runners execute jobs, selected by name through
:func:`make_runner` / :class:`~repro.config.ExecutionConfig` (or the CLI's
``--runner`` flag) and producing identical outputs and counter totals:

* :class:`LocalJobRunner` (``"local"``) — sequential, the default;
* :class:`ThreadPoolJobRunner` (``"threads"``) — concurrent tasks in a
  thread pool (GIL-bound, demonstrates the task model is parallelisable);
* :class:`ProcessPoolJobRunner` (``"processes"``) — tasks fanned out over
  worker processes for real multi-core speed-up.  Jobs must be picklable:
  use module-level mapper/reducer classes and ``functools.partial`` (not
  lambdas) as factories.

Spill semantics
---------------

Every runner shuffles through
:class:`~repro.mapreduce.shuffle.ExternalShuffle`.  With a
``spill_threshold_bytes`` budget configured, map output past the budget is
sorted and spilled as varint-framed runs to temp files, and each reducer
streams its partition from a k-way ``heapq.merge`` of those runs — the
shuffle's memory ceiling then stays at the budget regardless of input size,
and results are byte-identical to the in-memory path.  Runs that never hit
the budget (or run with the default ``None``) stay entirely in memory and
additionally report no spill counters, so existing measurements are
unchanged.
"""

from repro.mapreduce.counters import CounterGroup, Counters
from repro.mapreduce.dataset import (
    CollectionDataset,
    Dataset,
    DatasetStorage,
    FileDataset,
    MemoryDataset,
    Shard,
    as_dataset,
)
from repro.mapreduce.job import (
    Combiner,
    IdentityMapper,
    JobSpec,
    Mapper,
    Partitioner,
    Reducer,
    SortComparator,
)
from repro.mapreduce.runner import JobResult, LocalJobRunner
from repro.mapreduce.parallel import ThreadPoolJobRunner
from repro.mapreduce.process import ProcessPoolJobRunner
from repro.mapreduce.backends import RUNNER_BACKENDS, make_runner
from repro.mapreduce.shuffle import ExternalShuffle, PartitionInput
from repro.mapreduce.pipeline import JobPipeline, PipelineResult
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import ClusterCostModel, SimulatedCluster

__all__ = [
    "ClusterCostModel",
    "CollectionDataset",
    "Combiner",
    "CounterGroup",
    "Counters",
    "Dataset",
    "DatasetStorage",
    "DistributedCache",
    "ExternalShuffle",
    "FileDataset",
    "IdentityMapper",
    "JobPipeline",
    "JobResult",
    "JobSpec",
    "LocalJobRunner",
    "Mapper",
    "MemoryDataset",
    "PartitionInput",
    "Partitioner",
    "PipelineResult",
    "ProcessPoolJobRunner",
    "Reducer",
    "RUNNER_BACKENDS",
    "Shard",
    "SimulatedCluster",
    "SortComparator",
    "ThreadPoolJobRunner",
    "as_dataset",
    "make_runner",
]
