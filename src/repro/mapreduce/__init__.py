"""An in-process MapReduce engine modelled on Hadoop.

The engine exists so that the paper's algorithms can be written against the
same contract they were designed for — ``map()``, ``reduce()``, an optional
combiner, a custom partitioner and a custom sort comparator — while running
on a single machine.  It reproduces the quantities the paper measures:

* ``MAP_OUTPUT_RECORDS`` and ``MAP_OUTPUT_BYTES`` counters at the shuffle
  boundary (Figures 4 and 5, panels (b), (c), (e), (f));
* the number of MapReduce jobs a method launches (the per-job fixed cost the
  paper attributes to the APRIORI methods);
* per-task work, which feeds the simulated-cluster wallclock model used for
  the resource-scaling experiment (Figure 7).
"""

from repro.mapreduce.counters import CounterGroup, Counters
from repro.mapreduce.job import (
    Combiner,
    IdentityMapper,
    JobSpec,
    Mapper,
    Partitioner,
    Reducer,
    SortComparator,
)
from repro.mapreduce.runner import JobResult, LocalJobRunner
from repro.mapreduce.pipeline import JobPipeline, PipelineResult
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import ClusterCostModel, SimulatedCluster

__all__ = [
    "ClusterCostModel",
    "Combiner",
    "CounterGroup",
    "Counters",
    "DistributedCache",
    "IdentityMapper",
    "JobPipeline",
    "JobResult",
    "JobSpec",
    "LocalJobRunner",
    "Mapper",
    "Partitioner",
    "PipelineResult",
    "Reducer",
    "SimulatedCluster",
    "SortComparator",
]
