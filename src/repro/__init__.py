"""Reproduction of "Computing n-Gram Statistics in MapReduce" (EDBT 2013).

The package is organised in layers:

``repro.mapreduce``
    An in-process MapReduce engine (jobs, shuffle, counters, partitioners,
    sort comparators, multi-job pipelines, a simulated cluster cost model).

``repro.corpus``
    The document-collection substrate: documents, tokenisation, sentence
    splitting, vocabulary construction, integer sequence encoding and
    synthetic corpus generators standing in for the New York Times Annotated
    Corpus and ClueWeb09-B.

``repro.ngrams``
    n-gram primitives: sequence predicates, reverse lexicographic ordering,
    statistics containers and brute-force reference implementations.

``repro.algorithms``
    The paper's algorithms: NAIVE, APRIORI-SCAN, APRIORI-INDEX and the
    contributed SUFFIX-SIGMA method, plus its extensions (maximality,
    closedness, document frequency, time series, inverted indexes).

``repro.ngramstore``
    The serving half: sorted, block-compressed on-disk n-gram tables built
    by a total-order-sort MapReduce job, and a query engine (point, prefix,
    top-k) routing over their range partitions.

``repro.harness``
    The experiment harness reproducing every table and figure of the paper's
    evaluation section.

The most common entry points are re-exported here for convenience.
"""

from repro.config import ExecutionConfig, NGramJobConfig
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.corpus.synthetic import NewswireCorpusGenerator, WebCorpusGenerator
from repro.algorithms import (
    AprioriIndexCounter,
    AprioriScanCounter,
    NaiveCounter,
    SuffixSigmaCounter,
    count_ngrams,
)
from repro.ngrams.statistics import NGramStatistics
from repro.ngramstore import NGramStore, build_store

__version__ = "1.0.0"

__all__ = [
    "AprioriIndexCounter",
    "AprioriScanCounter",
    "Document",
    "DocumentCollection",
    "ExecutionConfig",
    "NGramJobConfig",
    "NGramStatistics",
    "NGramStore",
    "NaiveCounter",
    "NewswireCorpusGenerator",
    "SuffixSigmaCounter",
    "WebCorpusGenerator",
    "build_store",
    "count_ngrams",
    "__version__",
]
