"""Configuration objects shared by all n-gram counting algorithms.

The paper restricts the n-gram statistics to be computed by two parameters
(Section II/III):

* ``min_frequency`` (τ) — only n-grams occurring at least τ times in the
  document collection are reported;
* ``max_length`` (σ) — only n-grams of at most σ terms are considered.
  ``None`` represents σ = ∞.

Additional knobs correspond to the implementation techniques of Section V
(document splitting at infrequent terms, combiners for local aggregation) and
to engine-level settings (number of reducers, i.e. the ``R`` used by the
partition function of Algorithm 4).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.util.codecs import CODEC_NAMES

#: Sentinel used to express "no maximum length" (σ = ∞) in user-facing APIs.
UNBOUNDED: Optional[int] = None


@dataclass(frozen=True)
class NGramJobConfig:
    """Parameters controlling an n-gram statistics computation.

    Attributes
    ----------
    min_frequency:
        The minimum collection frequency τ ≥ 1.  n-grams occurring fewer than
        ``min_frequency`` times are not reported.
    max_length:
        The maximum n-gram length σ ≥ 1, or ``None`` for unbounded length.
    num_reducers:
        Number of reduce partitions ``R`` used by the engine.
    split_documents:
        Apply the "Document Splits" optimisation of Section V: documents are
        split at terms whose collection frequency is below τ, which is safe by
        the APRIORI principle and shortens the sequences each method has to
        process.
    use_combiner:
        Enable map-side local aggregation (a Hadoop combiner) where the
        algorithm supports it (NAIVE and the first phase of APRIORI methods).
    apriori_index_k:
        The ``K`` parameter of APRIORI-INDEX: n-grams up to this length are
        counted by direct indexing; longer n-grams are derived by joining
        posting lists.  The paper uses K = 4 in its experiments.
    count_document_frequency:
        When true, report document frequencies (number of documents containing
        the n-gram at least once) instead of collection frequencies.
    """

    min_frequency: int = 1
    max_length: Optional[int] = UNBOUNDED
    num_reducers: int = 4
    split_documents: bool = False
    use_combiner: bool = True
    apriori_index_k: int = 4
    count_document_frequency: bool = False

    def __post_init__(self) -> None:
        if self.min_frequency < 1:
            raise ConfigurationError(
                f"min_frequency (tau) must be >= 1, got {self.min_frequency}"
            )
        if self.max_length is not None and self.max_length < 1:
            raise ConfigurationError(
                f"max_length (sigma) must be >= 1 or None, got {self.max_length}"
            )
        if self.num_reducers < 1:
            raise ConfigurationError(
                f"num_reducers must be >= 1, got {self.num_reducers}"
            )
        if self.apriori_index_k < 1:
            raise ConfigurationError(
                f"apriori_index_k must be >= 1, got {self.apriori_index_k}"
            )

    @property
    def sigma(self) -> Optional[int]:
        """Alias for :attr:`max_length` using the paper's symbol."""
        return self.max_length

    @property
    def tau(self) -> int:
        """Alias for :attr:`min_frequency` using the paper's symbol."""
        return self.min_frequency

    def effective_max_length(self, document_length: int) -> int:
        """Return σ clamped to a concrete document length.

        When σ is unbounded the longest n-gram a document of
        ``document_length`` terms can contribute is the document itself.
        """
        if self.max_length is None:
            return document_length
        return min(self.max_length, document_length)

    def with_updates(self, **changes: object) -> "NGramJobConfig":
        """Return a copy of this configuration with ``changes`` applied."""
        return replace(self, **changes)  # type: ignore[arg-type]


#: Names of the MapReduce execution backends (see ``repro.mapreduce.backends``).
RUNNER_NAMES = ("local", "threads", "processes")

#: Where job outputs (and streamed job inputs) are materialised: ``memory``
#: keeps record lists in RAM, ``disk`` writes sharded on-disk datasets (see
#: ``repro.mapreduce.dataset``).
MATERIALIZE_MODES = ("memory", "disk")

#: Pipeline output-retention policies: ``final`` drops each job's output
#: once the next job of the pipeline has consumed it (counters and metrics
#: are always kept), ``all`` retains every job's output.
RETENTION_POLICIES = ("final", "all")

#: Codec names accepted for shard files, spill runs and store blocks (see
#: ``repro.util.codecs``; ``zstd`` additionally needs the optional package).
SHARD_CODECS = CODEC_NAMES


_SPILL_THRESHOLD_PATTERN = re.compile(
    r"^\s*(?P<number>\d+)\s*(?P<unit>b|kb|mb|gb|k|m|r|rec|records?)?\s*$",
    re.IGNORECASE,
)

#: Unit suffix -> (is_record_count, multiplier) for ``parse_spill_threshold``.
_SPILL_THRESHOLD_UNITS = {
    None: (False, 1),
    "b": (False, 1),
    "kb": (False, 1024),
    "mb": (False, 1024 * 1024),
    "gb": (False, 1024 * 1024 * 1024),
    "k": (True, 1_000),
    "m": (True, 1_000_000),
    "r": (True, 1),
    "rec": (True, 1),
    "record": (True, 1),
    "records": (True, 1),
}


def parse_spill_threshold(text: str) -> Tuple[Optional[int], Optional[int]]:
    """Parse a ``--spill-threshold`` value into ``(bytes, records)``.

    Byte-metering the compact serialised encoding underestimates Python
    object overhead ~50x, so a record-count budget is often the more
    intuitive knob.  Bare numbers and ``b``/``kb``/``mb``/``gb`` suffixes
    are byte budgets (bare numbers for backward compatibility); ``k``/``m``
    shorthands and ``r``/``rec``/``records`` suffixes are record counts
    (``100k`` = 100,000 records).  Exactly one element of the returned pair
    is set.
    """
    match = _SPILL_THRESHOLD_PATTERN.match(text)
    if not match:
        raise ConfigurationError(
            f"invalid spill threshold {text!r}; use bytes (e.g. 65536, 64kb) "
            "or a record count (e.g. 100k, 5000r)"
        )
    unit = match.group("unit")
    is_records, multiplier = _SPILL_THRESHOLD_UNITS[unit.lower() if unit else None]
    value = int(match.group("number")) * multiplier
    if value < 1:
        raise ConfigurationError(f"spill threshold must be >= 1, got {text!r}")
    if is_records:
        return None, value
    return value, None


@dataclass(frozen=True)
class ExecutionConfig:
    """How the MapReduce engine executes a job's tasks.

    Attributes
    ----------
    runner:
        Execution backend: ``"local"`` (sequential, the default),
        ``"threads"`` (thread-pool tasks) or ``"processes"`` (multi-core
        worker processes; job components must pickle).
    max_workers:
        Worker count for the concurrent backends; ``None`` uses each
        backend's default (4 threads, or the CPU count for processes).
    spill_threshold_bytes:
        In-memory byte budget of the shuffle; past it, sorted runs of map
        output spill to disk and reducers stream from a k-way merge.
        ``None`` keeps the whole shuffle in memory.
    spill_threshold_records:
        Record-count alternative to the byte budget (bytes in the compact
        encoding underestimate Python object overhead ~50x); the shuffle
        spills when *either* configured budget is exceeded.
    spill_dir:
        Directory for spilled runs (a private temp directory by default).
    shard_codec:
        Compression codec for on-disk shard files and spill runs:
        ``"none"`` (default), ``"gzip"``, or ``"zstd"`` (requires the
        optional ``zstandard`` package).
    materialize:
        Where job I/O is materialised: ``"memory"`` (record lists, the
        default) or ``"disk"`` (sharded varint-framed datasets; inputs are
        split per shard and reduce partitions written as output shards).
    dataset_dir:
        Directory for disk-materialised datasets (a private temp directory
        by default); ignored in memory mode.
    retention:
        How long a pipeline keeps job outputs: ``"final"`` (default) drops
        every job's output once the next job has consumed it, ``"all"``
        keeps them for post-hoc inspection.
    """

    runner: str = "local"
    max_workers: Optional[int] = None
    spill_threshold_bytes: Optional[int] = None
    spill_threshold_records: Optional[int] = None
    spill_dir: Optional[str] = None
    shard_codec: str = "none"
    materialize: str = "memory"
    dataset_dir: Optional[str] = None
    retention: str = "final"

    def __post_init__(self) -> None:
        if self.runner not in RUNNER_NAMES:
            raise ConfigurationError(
                f"runner must be one of {', '.join(RUNNER_NAMES)}, got {self.runner!r}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1 or None, got {self.max_workers}"
            )
        if self.spill_threshold_bytes is not None and self.spill_threshold_bytes < 1:
            raise ConfigurationError(
                f"spill_threshold_bytes must be >= 1 or None, got {self.spill_threshold_bytes}"
            )
        if self.spill_threshold_records is not None and self.spill_threshold_records < 1:
            raise ConfigurationError(
                f"spill_threshold_records must be >= 1 or None, got {self.spill_threshold_records}"
            )
        if self.shard_codec not in SHARD_CODECS:
            raise ConfigurationError(
                f"shard_codec must be one of {', '.join(SHARD_CODECS)}, "
                f"got {self.shard_codec!r}"
            )
        if self.materialize not in MATERIALIZE_MODES:
            raise ConfigurationError(
                f"materialize must be one of {', '.join(MATERIALIZE_MODES)}, "
                f"got {self.materialize!r}"
            )
        if self.retention not in RETENTION_POLICIES:
            raise ConfigurationError(
                f"retention must be one of {', '.join(RETENTION_POLICIES)}, "
                f"got {self.retention!r}"
            )


DEFAULT_EXECUTION = ExecutionConfig()


@dataclass(frozen=True)
class StoreConfig:
    """How a counting run's statistics are persisted as an n-gram store.

    Attributes
    ----------
    num_partitions:
        Number of range partitions (= tables) the total-order-sort build
        job produces; queries route by the sampled partition boundaries.
    codec:
        Per-block compression codec of the tables (``none``/``gzip``/
        ``zstd``; ``zstd`` requires the optional ``zstandard`` package).
    records_per_block:
        Records per data block — the unit of compression and of random-read
        I/O in the store tables.
    sample_size:
        Keys sampled from the input when planning partition boundaries.
    bloom_bits_per_key:
        Bloom-filter budget per key for the per-block filters persisted in
        each table's block index (``0`` disables the filters).  The default
        10 bits/key gives roughly a 1% false-positive rate on point misses.
    min_frequency:
        The store's serving threshold τ.  With ``min_frequency > 1`` the
        build splits an *unfiltered* (τ=1) count table: counts ``>= τ``
        form the main store, counts in ``[1, τ)`` go to the residual
        sidecar table — which is what makes later store merges exact at
        any τ (see :mod:`repro.ngramstore.merge`).  The default 1 keeps
        the classic single-table build.
    """

    num_partitions: int = 4
    codec: str = "none"
    records_per_block: int = 1024
    sample_size: int = 1024
    bloom_bits_per_key: int = 10
    min_frequency: int = 1

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise ConfigurationError(
                f"num_partitions must be >= 1, got {self.num_partitions}"
            )
        if self.codec not in SHARD_CODECS:
            raise ConfigurationError(
                f"store codec must be one of {', '.join(SHARD_CODECS)}, got {self.codec!r}"
            )
        if self.records_per_block < 1:
            raise ConfigurationError(
                f"records_per_block must be >= 1, got {self.records_per_block}"
            )
        if self.sample_size < 1:
            raise ConfigurationError(f"sample_size must be >= 1, got {self.sample_size}")
        if self.bloom_bits_per_key < 0:
            raise ConfigurationError(
                f"bloom_bits_per_key must be >= 0 (0 disables), "
                f"got {self.bloom_bits_per_key}"
            )
        if self.min_frequency < 1:
            raise ConfigurationError(
                f"store min_frequency must be >= 1, got {self.min_frequency}"
            )


@dataclass(frozen=True)
class ServerConfig:
    """How the n-gram store query server listens and caches.

    Attributes
    ----------
    host:
        Interface to bind; loopback by default (explicitly opt in to
        exposing the store beyond the machine).
    port:
        TCP port to listen on; ``0`` asks the OS for an ephemeral port
        (the server reports the bound port after start).
    cache_blocks:
        Capacity of the process-wide LRU block cache *shared by every
        partition* — unlike per-table caches, one hot working set serves
        all connections.  Resident memory is roughly ``cache_blocks x
        records_per_block x bytes per decoded record``.
    max_clients:
        Concurrently served connections; further connects wait in the
        listen backlog until a handler slot frees up.
    protocol:
        Wire protocol to serve: ``"socket"`` (newline-delimited JSON over
        TCP, the efficient in-repo path) or ``"http"`` (the REST adapter,
        reachable by curl/browsers/load balancers).
    binary:
        Whether a socket server negotiates the binary framing of
        :mod:`repro.ngramstore.wire` with capable clients (on by
        default); with ``False`` the server is JSON-only, exactly the
        pre-binary behaviour old deployments pin.
    num_shards / shard_index:
        Range sharding: serve only shard ``shard_index`` of a
        ``num_shards``-way split of the store's partitions.  The default
        (one shard, index 0) serves the whole store.
    slow_query_ms:
        Requests at or above this many milliseconds are appended to the
        structured slow-query log (trace ID, per-stage timings, I/O
        deltas).  ``None`` (the default) disables slow-query logging.
    slow_query_log:
        JSON-lines file the slow-query log appends to (parent directories
        are created).  ``None`` keeps slow queries in memory only —
        visible to in-process owners of the server object.
    extra_store:
        Directory of a second *comparison* store to mount read-only next
        to the served store, enabling the ``compare`` operation (point
        diff/intersect lookups across the two).  ``None`` (the default)
        leaves ``compare`` unavailable.
    """

    host: str = "127.0.0.1"
    port: int = 0
    cache_blocks: int = 256
    max_clients: int = 32
    protocol: str = "socket"
    binary: bool = True
    num_shards: int = 1
    shard_index: int = 0
    slow_query_ms: Optional[float] = None
    slow_query_log: Optional[str] = None
    extra_store: Optional[str] = None

    def __post_init__(self) -> None:
        if self.extra_store is not None and not isinstance(self.extra_store, str):
            raise ConfigurationError(
                f"extra_store must be a store directory path, got {self.extra_store!r}"
            )
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port}")
        if self.cache_blocks < 1:
            raise ConfigurationError(
                f"cache_blocks must be >= 1, got {self.cache_blocks}"
            )
        if self.max_clients < 1:
            raise ConfigurationError(f"max_clients must be >= 1, got {self.max_clients}")
        if self.protocol not in ("socket", "http"):
            raise ConfigurationError(
                f"protocol must be 'socket' or 'http', got {self.protocol!r}"
            )
        if self.num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {self.num_shards}")
        if not 0 <= self.shard_index < self.num_shards:
            raise ConfigurationError(
                f"shard_index must be in [0, {self.num_shards}), got {self.shard_index}"
            )
        if self.slow_query_ms is not None and self.slow_query_ms < 0:
            raise ConfigurationError(
                f"slow_query_ms must be >= 0, got {self.slow_query_ms}"
            )
        if self.slow_query_log is not None and self.slow_query_ms is None:
            raise ConfigurationError(
                "slow_query_log requires slow_query_ms (a log with no "
                "threshold would never be written)"
            )


@dataclass(frozen=True)
class ClusterConfig:
    """Configuration of the simulated cluster used for wallclock modelling.

    The paper's cluster has nine worker nodes, each running up to ten map and
    ten reduce tasks; experiments vary the number of *slots* (Section VII.H).
    The cost-model parameters below are expressed in abstract time units; only
    relative wallclock matters for the reproduction.
    """

    map_slots: int = 4
    reduce_slots: int = 4
    job_overhead: float = 0.3
    per_record_map_cost: float = 5e-5
    per_byte_shuffle_cost: float = 2e-7
    per_record_reduce_cost: float = 5e-5
    per_record_sort_cost: float = 5e-6
    task_overhead: float = 0.01

    def __post_init__(self) -> None:
        if self.map_slots < 1 or self.reduce_slots < 1:
            raise ConfigurationError("map_slots and reduce_slots must be >= 1")
        if self.job_overhead < 0:
            raise ConfigurationError("job_overhead must be >= 0")

    @classmethod
    def with_slots(cls, slots: int, **overrides: float) -> "ClusterConfig":
        """Create a configuration with ``slots`` map slots and reduce slots."""
        return cls(map_slots=slots, reduce_slots=slots, **overrides)  # type: ignore[arg-type]


DEFAULT_CLUSTER = ClusterConfig()
