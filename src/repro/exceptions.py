"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause without
swallowing unrelated built-in exceptions.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Raised when a job or experiment is configured with invalid parameters."""


class MapReduceError(ReproError):
    """Raised when a MapReduce job is mis-specified or fails during execution."""


class SerializationError(ReproError):
    """Raised when key/value serialisation or deserialisation fails."""


class DatasetError(ReproError):
    """Raised by the dataset layer: invalid splits, released datasets, bad shards."""


class VocabularyError(ReproError):
    """Raised when a term or term identifier cannot be resolved."""


class CorpusError(ReproError):
    """Raised when a document collection is malformed or cannot be read."""


class KVStoreError(ReproError):
    """Raised by the key-value store layer on invalid operations."""


class StoreError(ReproError):
    """Raised by the n-gram store: unsorted writes, corrupt tables, bad queries."""


class StoreConnectionError(StoreError):
    """Raised when a store client cannot reach (or loses) its server.

    Distinct from :class:`StoreError` so replica pools can tell a dead
    endpoint (fail over to the next replica) from an application error the
    server answered (which every replica would answer identically).
    """


class ExperimentError(ReproError):
    """Raised by the experiment harness when a run cannot be completed."""
