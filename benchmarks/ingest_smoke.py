"""End-to-end ingest smoke: incremental LSM growth equals a batch recount.

The check CI runs for the incremental-ingestion tier:

1. Slice one synthetic corpus into a base batch plus ``--deltas`` delta
   batches, all encoded against the *shared* dictionary (the contract
   ``repro ingest`` enforces).
2. Drive the real CLI: ``repro ingest --init`` for the base batch, one
   ``repro ingest`` per delta, then ``repro compact --all`` (writing the
   compaction-stats JSON that CI uploads as an artifact).
3. Build the reference store from scratch: one counting run over the whole
   corpus, persisted at the same τ.
4. Assert query identity — records, spot gets, top-k in both orders — for
   the LSM directory read directly *and* served over the socket protocol.

Exit status is non-zero on any mismatch, so the CI step fails loudly.
"""

import argparse
import json
import os
import sys
import time
from typing import List, Optional, Sequence

from repro.algorithms import make_counter
from repro.cli import main as repro_main
from repro.config import NGramJobConfig, ServerConfig, StoreConfig
from repro.corpus.collection import EncodedCollection
from repro.corpus.io import write_encoded_collection
from repro.harness.datasets import nytimes_like
from repro.ngramstore import NGramStore, StoreClient, open_store_auto
from repro.ngramstore.server import NGramStoreServer


def run_cli(argv: List[str]) -> None:
    print(f"$ repro {' '.join(argv)}", flush=True)
    status = repro_main(argv)
    if status != 0:
        raise SystemExit(f"repro {argv[0]} exited with status {status}")


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")
    print(f"ok: {message}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--documents", type=int, default=60, help="corpus size")
    parser.add_argument("--deltas", type=int, default=2, help="delta batches after the base")
    parser.add_argument("--tau", type=int, default=2, help="LSM store threshold")
    parser.add_argument("--sigma", type=int, default=4, help="maximum n-gram length")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--workdir", default="work/ingest-smoke")
    parser.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="compaction stats artifact (default: WORKDIR/compaction-stats.json)",
    )
    args = parser.parse_args(argv)

    stats_path = args.stats_json or os.path.join(args.workdir, "compaction-stats.json")
    os.makedirs(args.workdir, exist_ok=True)

    # One corpus, sliced into batches that share the dictionary — exactly
    # how a rolling corpus reaches an LSM store in production.
    collection = nytimes_like(num_documents=args.documents, seed=args.seed).build()
    documents = list(collection.documents)
    num_batches = args.deltas + 1
    size = -(-len(documents) // num_batches)  # ceil division
    batch_dirs = []
    for index in range(num_batches):
        batch = EncodedCollection(
            documents[index * size : (index + 1) * size], collection.vocabulary
        )
        directory = os.path.join(args.workdir, f"batch-{index}")
        write_encoded_collection(batch, directory, num_shards=2)
        batch_dirs.append(directory)

    # Incremental path, through the real CLI.
    lsm_dir = os.path.join(args.workdir, "lsm")
    run_cli(
        [
            "ingest",
            lsm_dir,
            "--input",
            batch_dirs[0],
            "--init",
            "--tau",
            str(args.tau),
            "--sigma",
            str(args.sigma),
        ]
    )
    for directory in batch_dirs[1:]:
        run_cli(["ingest", lsm_dir, "--input", directory])
    started = time.perf_counter()
    run_cli(["compact", lsm_dir, "--all", "--stats-json", stats_path])
    compact_seconds = time.perf_counter() - started
    with open(stats_path, "r", encoding="utf-8") as handle:
        stats = json.load(handle)
    check(stats["generations_after"] == 1, "compaction collapsed to one generation")
    check(stats["min_frequency"] == args.tau, "compaction applied the store τ")
    print(f"compaction: {stats['records_in']} -> {stats['records_out']} records "
          f"in {compact_seconds:.2f}s")

    # Batch path: one from-scratch counting run over the union corpus.
    union_dir = os.path.join(args.workdir, "union")
    counter = make_counter(
        "SUFFIX-SIGMA", NGramJobConfig(min_frequency=1, max_length=args.sigma)
    )
    counter.run(
        collection,
        store_dir=union_dir,
        store=StoreConfig(num_partitions=4, min_frequency=args.tau),
    )

    with open_store_auto(lsm_dir) as view, NGramStore.open(union_dir) as scratch:
        expected = list(scratch.items())
        check(bool(expected), "union store is non-empty")
        check(
            list(view.scan()) == expected,
            f"LSM view streams the union store's {len(expected)} records",
        )
        check(
            [tuple(r) for r in view.top_k(10)] == [tuple(r) for r in scratch.top_k(10)],
            "top-k by frequency identical",
        )
        check(
            [tuple(r) for r in view.top_k(10, order="key")]
            == [tuple(r) for r in scratch.top_k(10, order="key")],
            "top-k by key identical",
        )
        spot_keys = [key for key, _ in expected[:: max(1, len(expected) // 100)]]

        # Served path: the socket server opens the LSM directory itself.
        server = NGramStoreServer(lsm_dir, config=ServerConfig(port=0))
        server.start()
        try:
            with StoreClient(server.host, server.port) as client:
                check(
                    client.multi_get(spot_keys) == scratch.multi_get(spot_keys),
                    f"{len(spot_keys)} served spot lookups match the union store",
                )
                check(
                    [tuple(r) for r in client.top_k(10)]
                    == [tuple(r) for r in scratch.top_k(10)],
                    "served top-k identical",
                )
                check(
                    client.stats()["num_records"] == len(expected),
                    "served stats report the union record count",
                )
        finally:
            server.close()

    print("ingest smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
