"""Figure 5 — varying the maximum length σ (per-dataset τ).

Shapes to reproduce from the paper:
* the APRIORI methods launch more jobs (and keep getting slower) as σ grows;
* NAIVE and SUFFIX-σ saturate: beyond the sentence length, raising σ adds no
  work (sentence boundaries act as barriers);
* SUFFIX-σ's *record* count is constant in σ (one record per term
  occurrence), only its byte count grows and then saturates;
* on the NYT-like dataset SUFFIX-σ wins across the board; on the web-like
  dataset NAIVE is skipped for σ > 5 (as in the paper).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.figures import figure5_vary_sigma
from repro.harness.report import format_sweep


def _per_sigma(sweep, algorithm, attribute):
    result = {}
    for sigma, measurements in sweep.items():
        for measurement in measurements:
            if measurement.algorithm == algorithm:
                result[sigma] = getattr(measurement, attribute)
    return result


def test_figure5_vary_sigma(benchmark, datasets, runner):
    sweeps = run_once(benchmark, figure5_vary_sigma, datasets, runner)

    for name, sweep in sweeps.items():
        print(f"\n=== Figure 5 ({name}): varying sigma ===")
        print("\nsimulated wallclock (s):")
        print(format_sweep(sweep, metric="simulated_s", parameter_label="method"))
        print("\nbytes transferred:")
        print(format_sweep(sweep, metric="bytes", parameter_label="method"))
        print("\n# records:")
        print(format_sweep(sweep, metric="records", parameter_label="method"))

    for name, sweep in sweeps.items():
        sigmas = sorted(sweep.keys())
        smallest, largest = sigmas[0], sigmas[-1]

        # SUFFIX-SIGMA's record count is constant in sigma.
        suffix_records = _per_sigma(sweep, "SUFFIX-SIGMA", "map_output_records")
        assert len(set(suffix_records.values())) == 1

        # The APRIORI methods need more jobs as sigma grows.
        scan_jobs = _per_sigma(sweep, "APRIORI-SCAN", "num_jobs")
        assert scan_jobs[largest] >= scan_jobs[smallest]

        # SUFFIX-SIGMA needs exactly one job at every sigma.
        suffix_jobs = _per_sigma(sweep, "SUFFIX-SIGMA", "num_jobs")
        assert set(suffix_jobs.values()) == {1}

        # At the largest sigma SUFFIX-SIGMA beats every competitor.
        largest_measurements = {m.algorithm: m for m in sweep[largest]}
        best_other = min(
            m.simulated_wallclock_seconds
            for algorithm, m in largest_measurements.items()
            if algorithm != "SUFFIX-SIGMA"
        )
        assert (
            largest_measurements["SUFFIX-SIGMA"].simulated_wallclock_seconds < best_other
        )

    # NAIVE is skipped for sigma > 5 on the web-like dataset.
    web_sweep = sweeps["CW-like"]
    for sigma, measurements in web_sweep.items():
        algorithms = {m.algorithm for m in measurements}
        if sigma is not None and sigma > 5:
            assert "NAIVE" not in algorithms
        else:
            assert "NAIVE" in algorithms
