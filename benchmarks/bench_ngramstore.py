"""NGramStore build cost, query latency and size-vs-codec comparison.

Counts n-grams on the NYT-like dataset once, then for every available
codec builds the store (total-order-sort job + table writing), measures
point-lookup and prefix-scan latency against the finished store, and
records the on-disk footprint.  The comparison is exported as a JSON
report (``NGRAMSTORE_REPORT`` environment variable, default
``ngramstore_report.json``) — the CI benchmark smoke job uploads that
file as an artifact.
"""

from __future__ import annotations

import json
import os
import random
import time

from benchmarks.conftest import run_once
from repro.algorithms import count_ngrams
from repro.config import StoreConfig
from repro.harness.report import format_table
from repro.ngramstore import NGramStore, TopKAccumulator, build_store
from repro.ngramstore.table import top_k_records
from repro.util.codecs import available_codecs

#: Point lookups timed per codec (hot after the first pass over the keys).
NUM_POINT_QUERIES = 2000

#: Prefix scans timed per codec.
NUM_PREFIX_QUERIES = 200

RECORDS_PER_BLOCK = 256


def _store_size_bytes(store_dir):
    return sum(
        os.path.getsize(os.path.join(store_dir, name))
        for name in os.listdir(store_dir)
        if name.endswith(".ngt")
    )


def _bench_codec(codec, statistics, vocabulary, root):
    store_dir = os.path.join(root, f"store-{codec}")
    build_started = time.perf_counter()
    build_store(
        statistics.items(),
        store_dir,
        store=StoreConfig(num_partitions=4, codec=codec, records_per_block=RECORDS_PER_BLOCK),
        vocabulary=vocabulary,
    )
    build_seconds = time.perf_counter() - build_started

    rng = random.Random(17)
    keys = sorted(statistics.as_dict())
    probes = [rng.choice(keys) for _ in range(NUM_POINT_QUERIES)]
    prefixes = [rng.choice(keys)[:1] for _ in range(NUM_PREFIX_QUERIES)]

    with NGramStore.open(store_dir) as store:
        point_started = time.perf_counter()
        for key in probes:
            store.get(key)
        point_seconds = time.perf_counter() - point_started

        prefix_started = time.perf_counter()
        matched = 0
        for prefix in prefixes:
            for _ in store.prefix(prefix):
                matched += 1
        prefix_seconds = time.perf_counter() - prefix_started

        top = store.top_k(10)
        stats = store.cache_stats()

    return {
        "codec": codec,
        "num_ngrams": len(keys),
        "build_s": round(build_seconds, 4),
        "store_bytes": _store_size_bytes(store_dir),
        "point_us": round(point_seconds / NUM_POINT_QUERIES * 1e6, 2),
        "prefix_us": round(prefix_seconds / NUM_PREFIX_QUERIES * 1e6, 2),
        "prefix_matches": matched,
        "top1": " ".join(str(term) for term in top[0][0]) if top else "",
        "cache_hit_rate": round(stats.hit_rate, 4),
    }


def _compare_codecs(spec, tau=3, sigma=4):
    collection = spec.build()
    result = count_ngrams(collection, min_frequency=tau, max_length=sigma)
    root = os.path.join(
        os.environ.get("NGRAMSTORE_WORKDIR", "reports"), "ngramstore-bench"
    )
    os.makedirs(root, exist_ok=True)
    return [
        _bench_codec(codec, result.statistics, collection.vocabulary, root)
        for codec in available_codecs()
    ]


def _bench_top_k_skipping(num_records=40_000, records_per_block=256, ks=(1, 10, 100)):
    """Top-k on a frequency-skewed store: blocks read with vs without summaries.

    The store mimics a real n-gram store's shape — term identifiers are
    assigned in descending collection frequency, so frequency decays along
    the key order — which is exactly when per-block max summaries pay off:
    once the heap floor rises past the tail blocks' maxima, they are
    skipped unread.
    """
    rng = random.Random(23)
    records = [
        ((index // 13, index % 13, index), max(1, num_records - index + rng.randint(0, 9)))
        for index in range(num_records)
    ]
    root = os.path.join(
        os.environ.get("NGRAMSTORE_WORKDIR", "reports"), "ngramstore-topk"
    )
    store_dir = os.path.join(root, "skewed-store")
    build_store(
        records,
        store_dir,
        store=StoreConfig(num_partitions=4, records_per_block=records_per_block),
    )
    rows = []
    with NGramStore.open(store_dir) as store:
        total_blocks = sum(
            store._table(index).num_blocks for index in range(store.num_partitions)
        )
        for k in ks:
            reference = top_k_records(iter(records), k, "frequency")

            skip_started = time.perf_counter()
            accumulator = TopKAccumulator(k)
            store.top_k_into(accumulator)
            skip_seconds = time.perf_counter() - skip_started

            scan_started = time.perf_counter()
            full_scan = top_k_records(store.items(), k, "frequency")
            scan_seconds = time.perf_counter() - scan_started

            assert accumulator.results() == reference
            assert full_scan == reference
            rows.append(
                {
                    "k": k,
                    "blocks_total": total_blocks,
                    "blocks_scanned": accumulator.blocks_scanned,
                    "blocks_skipped": accumulator.blocks_skipped,
                    "skip_ms": round(skip_seconds * 1e3, 3),
                    "full_scan_ms": round(scan_seconds * 1e3, 3),
                    "speedup": round(scan_seconds / skip_seconds, 2) if skip_seconds else None,
                }
            )
    return rows


def test_ngramstore_top_k_block_skipping(benchmark):
    rows = run_once(benchmark, _bench_top_k_skipping)

    print("\n=== NGramStore top-k block skipping (skewed store) ===")
    print(format_table(rows))

    report_path = os.environ.get(
        "NGRAMSTORE_TOPK_REPORT", "ngramstore_topk_report.json"
    )
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle, indent=2, sort_keys=True)
    print(f"\nwrote top-k block-skip comparison to {report_path}")

    # The acceptance bar: on a skewed store the summary-guided pass reads
    # strictly fewer blocks than the full scan for every k.
    for row in rows:
        assert row["blocks_scanned"] + row["blocks_skipped"] == row["blocks_total"]
        assert row["blocks_scanned"] < row["blocks_total"]
        assert row["blocks_skipped"] > 0


def test_ngramstore_build_and_query(benchmark, nyt_spec):
    rows = run_once(benchmark, _compare_codecs, nyt_spec)

    print(f"\n=== NGramStore build/query ({nyt_spec.name}) ===")
    print(format_table(rows))

    report_path = os.environ.get("NGRAMSTORE_REPORT", "ngramstore_report.json")
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle, indent=2, sort_keys=True)
    print(f"\nwrote n-gram store comparison to {report_path}")

    baseline = next(row for row in rows if row["codec"] == "none")
    for row in rows:
        # Every codec serves exactly the same statistics.
        assert row["num_ngrams"] == baseline["num_ngrams"]
        assert row["prefix_matches"] == baseline["prefix_matches"]
        assert row["top1"] == baseline["top1"]
    compressed = [row for row in rows if row["codec"] != "none"]
    # The compression satellite's acceptance bar: compressed tables are
    # strictly smaller than the uncompressed layout.
    assert all(row["store_bytes"] < baseline["store_bytes"] for row in compressed)
