"""NGramStore build cost, query latency and size-vs-codec comparison.

Counts n-grams on the NYT-like dataset once, then for every available
codec builds the store (total-order-sort job + table writing), measures
point-lookup and prefix-scan latency against the finished store, and
records the on-disk footprint.  The comparison is exported as a JSON
report (``NGRAMSTORE_REPORT`` environment variable, default
``ngramstore_report.json``) — the CI benchmark smoke job uploads that
file as an artifact.
"""

from __future__ import annotations

import json
import os
import random
import time

from benchmarks.conftest import run_once
from repro.algorithms import count_ngrams
from repro.config import ServerConfig, StoreConfig
from repro.harness.report import format_table
from repro.ngramstore import (
    NGramStore,
    NGramStoreServer,
    StoreClient,
    TopKAccumulator,
    build_store,
)
from repro.ngramstore.table import top_k_records
from repro.util.codecs import available_codecs

#: Point lookups timed per codec (hot after the first pass over the keys).
NUM_POINT_QUERIES = 2000

#: Prefix scans timed per codec.
NUM_PREFIX_QUERIES = 200

RECORDS_PER_BLOCK = 256


def _store_size_bytes(store_dir):
    return sum(
        os.path.getsize(os.path.join(store_dir, name))
        for name in os.listdir(store_dir)
        if name.endswith(".ngt")
    )


def _bench_codec(codec, statistics, vocabulary, root):
    store_dir = os.path.join(root, f"store-{codec}")
    build_started = time.perf_counter()
    build_store(
        statistics.items(),
        store_dir,
        store=StoreConfig(num_partitions=4, codec=codec, records_per_block=RECORDS_PER_BLOCK),
        vocabulary=vocabulary,
    )
    build_seconds = time.perf_counter() - build_started

    rng = random.Random(17)
    keys = sorted(statistics.as_dict())
    probes = [rng.choice(keys) for _ in range(NUM_POINT_QUERIES)]
    prefixes = [rng.choice(keys)[:1] for _ in range(NUM_PREFIX_QUERIES)]

    with NGramStore.open(store_dir) as store:
        point_started = time.perf_counter()
        for key in probes:
            store.get(key)
        point_seconds = time.perf_counter() - point_started

        prefix_started = time.perf_counter()
        matched = 0
        for prefix in prefixes:
            for _ in store.prefix(prefix):
                matched += 1
        prefix_seconds = time.perf_counter() - prefix_started

        top = store.top_k(10)
        stats = store.cache_stats()

    return {
        "codec": codec,
        "num_ngrams": len(keys),
        "build_s": round(build_seconds, 4),
        "store_bytes": _store_size_bytes(store_dir),
        "point_us": round(point_seconds / NUM_POINT_QUERIES * 1e6, 2),
        "prefix_us": round(prefix_seconds / NUM_PREFIX_QUERIES * 1e6, 2),
        "prefix_matches": matched,
        "top1": " ".join(str(term) for term in top[0][0]) if top else "",
        "cache_hit_rate": round(stats.hit_rate, 4),
    }


def _compare_codecs(spec, tau=3, sigma=4):
    collection = spec.build()
    result = count_ngrams(collection, min_frequency=tau, max_length=sigma)
    root = os.path.join(
        os.environ.get("NGRAMSTORE_WORKDIR", "reports"), "ngramstore-bench"
    )
    os.makedirs(root, exist_ok=True)
    return [
        _bench_codec(codec, result.statistics, collection.vocabulary, root)
        for codec in available_codecs()
    ]


def _bench_top_k_skipping(num_records=40_000, records_per_block=256, ks=(1, 10, 100)):
    """Top-k on a frequency-skewed store: blocks read with vs without summaries.

    The store mimics a real n-gram store's shape — term identifiers are
    assigned in descending collection frequency, so frequency decays along
    the key order — which is exactly when per-block max summaries pay off:
    once the heap floor rises past the tail blocks' maxima, they are
    skipped unread.
    """
    rng = random.Random(23)
    records = [
        ((index // 13, index % 13, index), max(1, num_records - index + rng.randint(0, 9)))
        for index in range(num_records)
    ]
    root = os.path.join(
        os.environ.get("NGRAMSTORE_WORKDIR", "reports"), "ngramstore-topk"
    )
    store_dir = os.path.join(root, "skewed-store")
    build_store(
        records,
        store_dir,
        store=StoreConfig(num_partitions=4, records_per_block=records_per_block),
    )
    rows = []
    with NGramStore.open(store_dir) as store:
        total_blocks = sum(
            store._table(index).num_blocks for index in range(store.num_partitions)
        )
        for k in ks:
            reference = top_k_records(iter(records), k, "frequency")

            skip_started = time.perf_counter()
            accumulator = TopKAccumulator(k)
            store.top_k_into(accumulator)
            skip_seconds = time.perf_counter() - skip_started

            scan_started = time.perf_counter()
            full_scan = top_k_records(store.items(), k, "frequency")
            scan_seconds = time.perf_counter() - scan_started

            assert accumulator.results() == reference
            assert full_scan == reference
            rows.append(
                {
                    "k": k,
                    "blocks_total": total_blocks,
                    "blocks_scanned": accumulator.blocks_scanned,
                    "blocks_skipped": accumulator.blocks_skipped,
                    "skip_ms": round(skip_seconds * 1e3, 3),
                    "full_scan_ms": round(scan_seconds * 1e3, 3),
                    "speedup": round(scan_seconds / skip_seconds, 2) if skip_seconds else None,
                }
            )
    return rows


def test_ngramstore_top_k_block_skipping(benchmark):
    rows = run_once(benchmark, _bench_top_k_skipping)

    print("\n=== NGramStore top-k block skipping (skewed store) ===")
    print(format_table(rows))

    report_path = os.environ.get(
        "NGRAMSTORE_TOPK_REPORT", "ngramstore_topk_report.json"
    )
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle, indent=2, sort_keys=True)
    print(f"\nwrote top-k block-skip comparison to {report_path}")

    # The acceptance bar: on a skewed store the summary-guided pass reads
    # strictly fewer blocks than the full scan for every k.
    for row in rows:
        assert row["blocks_scanned"] + row["blocks_skipped"] == row["blocks_total"]
        assert row["blocks_scanned"] < row["blocks_total"]
        assert row["blocks_skipped"] > 0


def _time_us(call, repeats):
    """Mean wall-clock microseconds per invocation of ``call``."""
    started = time.perf_counter()
    for _ in range(repeats):
        call()
    return round((time.perf_counter() - started) / repeats * 1e6, 2)


def _serving_records(count=6000, seed=41):
    rng = random.Random(seed)
    keys = set()
    while len(keys) < count:
        keys.add(tuple(rng.randint(0, 120) for _ in range(rng.randint(1, 4))))
    return [(key, rng.randint(1, 10_000)) for key in sorted(keys)]


def _build_legacy_store(records, store_dir, config):
    """Build a store whose block indexes predate max_value and blooms."""
    import repro.ngramstore.format as format_module
    import repro.ngramstore.table as table_module

    real_write_index = format_module.write_index

    def legacy_write_index(handle, index):
        return real_write_index(handle, [tuple(entry)[:5] for entry in index])

    table_module.write_index = legacy_write_index
    try:
        build_store(records, store_dir, store=config)
    finally:
        table_module.write_index = real_write_index


def _bench_local_read_paths(records, store_dir, miss_probes=400):
    """mmap vs file I/O latency, and the Bloom point-miss fast path."""
    expected = dict(records)
    hit_keys = [key for key, _ in records[:: max(1, len(records) // 500)]]
    rng = random.Random(97)
    miss_keys = []
    while len(miss_keys) < miss_probes:
        key = tuple(rng.randint(0, 120) for _ in range(3))
        if key not in expected:
            miss_keys.append(key)

    rows = {}
    for label, use_mmap in (("mmap", True), ("file_io", False)):
        with NGramStore.open(store_dir, use_mmap=use_mmap) as store:
            for key in hit_keys:  # warm the block cache identically
                assert store.get(key) == expected[key]
            point_hit_us = _time_us(
                lambda store=store: [store.get(key) for key in hit_keys], 5
            ) / len(hit_keys)
            point_miss_us = _time_us(
                lambda store=store: [store.get(key) for key in miss_keys], 5
            ) / len(miss_keys)
            first_terms = sorted({key[0] for key in expected})[:40]
            prefix_us = _time_us(
                lambda store=store: [store.prefix((term,)) for term in first_terms], 3
            ) / len(first_terms)
            io_stats = store.io_stats()
            rows[label] = {
                "point_hit_us": round(point_hit_us, 2),
                "point_miss_us": round(point_miss_us, 2),
                "prefix_us": round(prefix_us, 2),
                "mmap_partitions": io_stats["mmap_partitions"],
            }

    # The Bloom fast path, counter-asserted per miss: a filtered miss must
    # decode zero data blocks.
    with NGramStore.open(store_dir) as store:
        filtered = decoded_during_filtered = unfiltered = 0
        for key in miss_keys:
            before = store.io_stats()
            assert store.get(key) is None
            after = store.io_stats()
            if after["bloom_rejections"] > before["bloom_rejections"]:
                filtered += 1
                decoded_during_filtered += (
                    after["blocks_decoded"] - before["blocks_decoded"]
                )
            else:
                unfiltered += 1
        rows["bloom"] = {
            "misses_probed": len(miss_keys),
            "misses_filtered": filtered,
            "misses_unfiltered": unfiltered,
            "blocks_decoded_on_filtered_misses": decoded_during_filtered,
        }
    return rows


def _bench_wire_protocols(records, store_dir, batch=64, repeats=30):
    """Point/batch latency and throughput, binary vs JSON, one live server."""
    expected = dict(records)
    rng = random.Random(71)
    batch_keys = [rng.choice(records)[0] for _ in range(batch)]
    reference = [expected[key] for key in batch_keys]
    prefix_batch = [(term,) for term in sorted({key[0] for key in expected})[:8]]

    rows = {}
    with NGramStoreServer(
        store_dir, config=ServerConfig(port=0, cache_blocks=512)
    ) as server:
        clients = {
            "binary": StoreClient(server.host, server.port, protocol="binary"),
            "json": StoreClient(server.host, server.port, protocol="json"),
        }
        try:
            # Identity first: the two protocols must answer byte-identically.
            answers = {
                name: (
                    client.multi_get(batch_keys),
                    client.multi_prefix(prefix_batch),
                    client.top_k(20),
                    client.stats(),
                )
                for name, client in clients.items()
            }
            assert answers["binary"] == answers["json"]
            assert answers["binary"][0] == reference

            for name, client in clients.items():
                point_us = _time_us(
                    lambda client=client: [client.get(key) for key in batch_keys],
                    repeats,
                ) / len(batch_keys)
                batch_us = _time_us(
                    lambda client=client: client.multi_get(batch_keys), repeats
                )
                multi_prefix_us = _time_us(
                    lambda client=client: client.multi_prefix(prefix_batch), repeats
                )
                sequential_prefix_us = _time_us(
                    lambda client=client: [
                        client.prefix(prefix) for prefix in prefix_batch
                    ],
                    repeats,
                )
                rows[name] = {
                    "point_us": round(point_us, 2),
                    "point_requests_per_s": round(1e6 / point_us),
                    "multi_get_batch_us": batch_us,
                    "multi_get_us_per_key": round(batch_us / len(batch_keys), 2),
                    "multi_prefix_batch_us": multi_prefix_us,
                    "sequential_prefix_us": sequential_prefix_us,
                }
        finally:
            for client in clients.values():
                client.close()
    rows["batch_size"] = batch
    # The headline number: one batched binary round-trip for N keys versus
    # N single-key JSON round-trips.
    rows["speedup_binary_batch_vs_json_points"] = round(
        rows["json"]["point_us"] * batch / rows["binary"]["multi_get_batch_us"], 2
    )
    rows["speedup_binary_batch_vs_binary_points"] = round(
        rows["binary"]["point_us"] * batch / rows["binary"]["multi_get_batch_us"], 2
    )
    return rows


def _bench_serving_fast_path():
    records = _serving_records()
    config = StoreConfig(num_partitions=3, records_per_block=64)
    root = os.path.join(
        os.environ.get("NGRAMSTORE_WORKDIR", "reports"), "ngramstore-serve"
    )
    store_dir = os.path.join(root, "store")
    legacy_dir = os.path.join(root, "legacy-store")
    build_store(records, store_dir, store=config)
    _build_legacy_store(records, legacy_dir, config)

    # Old-format identity: a pre-bloom/pre-summary store answers the same.
    probes = [key for key, _ in records[::37]] + [(12_000,)]
    with NGramStore.open(store_dir) as modern, NGramStore.open(legacy_dir) as legacy:
        assert list(modern.items()) == list(legacy.items())
        assert [modern.get(key) for key in probes] == [
            legacy.get(key) for key in probes
        ]
        assert modern.top_k(25) == legacy.top_k(25)
        assert legacy.io_stats()["bloom_rejections"] == 0

    return {
        "schema_version": 1,
        "store": {
            "num_records": len(records),
            "num_partitions": config.num_partitions,
            "records_per_block": config.records_per_block,
            "bloom_bits_per_key": config.bloom_bits_per_key,
        },
        "local": _bench_local_read_paths(records, store_dir),
        "protocol": _bench_wire_protocols(records, store_dir),
        "identity": {
            "legacy_store_identical": True,  # asserted above
            "protocols_identical": True,  # asserted in _bench_wire_protocols
        },
    }


def test_ngramstore_serving_fast_path(benchmark):
    report = run_once(benchmark, _bench_serving_fast_path)

    print("\n=== NGramStore serving fast path (local read paths) ===")
    print(format_table([{"path": name, **row} for name, row in report["local"].items() if name != "bloom"]))
    print("\n=== Wire protocols (binary vs JSON, live server) ===")
    print(format_table([{"protocol": name, **report["protocol"][name]} for name in ("binary", "json")]))
    bloom = report["local"]["bloom"]
    speedup = report["protocol"]["speedup_binary_batch_vs_json_points"]
    print(
        f"\nbloom: {bloom['misses_filtered']}/{bloom['misses_probed']} misses filtered, "
        f"{bloom['blocks_decoded_on_filtered_misses']} blocks decoded for them; "
        f"batched binary vs per-key JSON speedup: {speedup}x"
    )

    report_path = os.environ.get("NGRAMSTORE_BENCH_REPORT", "BENCH_ngramstore.json")
    parent = os.path.dirname(report_path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"wrote serving fast-path baseline to {report_path}")

    # Acceptance bars for the raw-speed serving path:
    # 1. One batched binary multi_get of N keys beats N single-key JSON
    #    round-trips by >= 3x.
    assert report["protocol"]["batch_size"] == 64
    assert speedup >= 3.0, f"batched binary speedup {speedup}x < 3x"
    # 2. Bloom-filtered point misses decode zero data blocks, by counter.
    assert bloom["misses_filtered"] > 0
    assert bloom["blocks_decoded_on_filtered_misses"] == 0
    # 3. The zero-copy path was actually active (and its twin was not).
    assert report["local"]["mmap"]["mmap_partitions"] == 3
    assert report["local"]["file_io"]["mmap_partitions"] == 0
    # 4. Cross-protocol and old/new-format identity held.
    assert all(report["identity"].values())


def test_ngramstore_build_and_query(benchmark, nyt_spec):
    rows = run_once(benchmark, _compare_codecs, nyt_spec)

    print(f"\n=== NGramStore build/query ({nyt_spec.name}) ===")
    print(format_table(rows))

    report_path = os.environ.get("NGRAMSTORE_REPORT", "ngramstore_report.json")
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle, indent=2, sort_keys=True)
    print(f"\nwrote n-gram store comparison to {report_path}")

    baseline = next(row for row in rows if row["codec"] == "none")
    for row in rows:
        # Every codec serves exactly the same statistics.
        assert row["num_ngrams"] == baseline["num_ngrams"]
        assert row["prefix_matches"] == baseline["prefix_matches"]
        assert row["top1"] == baseline["top1"]
    compressed = [row for row in rows if row["codec"] != "none"]
    # The compression satellite's acceptance bar: compressed tables are
    # strictly smaller than the uncompressed layout.
    assert all(row["store_bytes"] < baseline["store_bytes"] for row in compressed)
