"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section VII) on the scaled-down synthetic datasets.  The dataset specs are
session-scoped so the corpora are generated once per benchmark session.

Run the full harness with::

    pytest benchmarks/ --benchmark-only

Each benchmark prints the paper-style rows it produced (use ``-s`` to see
them inline); the same numbers are recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import pytest

from repro.harness.datasets import DatasetSpec, clueweb_like, nytimes_like
from repro.harness.experiment import ExperimentRunner


@pytest.fixture(scope="session")
def nyt_spec() -> DatasetSpec:
    """The NYT-like dataset used throughout the benchmarks."""
    return nytimes_like(num_documents=120)


@pytest.fixture(scope="session")
def cw_spec() -> DatasetSpec:
    """The ClueWeb-like dataset used throughout the benchmarks."""
    return clueweb_like(num_documents=150)


@pytest.fixture(scope="session")
def datasets(nyt_spec: DatasetSpec, cw_spec: DatasetSpec):
    """Both datasets, in the order the paper lists them (NYT, CW)."""
    return [nyt_spec, cw_spec]


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """The default experiment runner (combiner on, no document splitting)."""
    return ExperimentRunner()


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are macro-benchmarks (seconds each, deterministic), so a
    single round is both sufficient and what keeps the full harness fast.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
