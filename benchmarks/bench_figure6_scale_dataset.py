"""Figure 6 — scaling the datasets (25 %, 50 %, 75 %, 100 % samples).

Every method runs on random document samples of increasing size with σ=5 and
the per-dataset default τ.

Shapes to reproduce from the paper: every method's cost grows with the
sample size (roughly linearly), all methods scale comparably (similar
slopes), and the relative order of the methods is preserved across sample
sizes.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.figures import figure6_scale_datasets
from repro.harness.report import format_sweep


def test_figure6_scale_datasets(benchmark, datasets, runner):
    sweeps = run_once(benchmark, figure6_scale_datasets, datasets, runner)

    for name, sweep in sweeps.items():
        print(f"\n=== Figure 6 ({name}): scaling the dataset ===")
        print("\nsimulated wallclock (s):")
        print(format_sweep(sweep, metric="simulated_s", parameter_label="method"))
        print("\n# records:")
        print(format_sweep(sweep, metric="records", parameter_label="method"))

    for name, sweep in sweeps.items():
        fractions = sorted(sweep.keys())
        smallest, largest = fractions[0], fractions[-1]
        for algorithm in ("NAIVE", "APRIORI-SCAN", "APRIORI-INDEX", "SUFFIX-SIGMA"):
            small = next(
                m for m in sweep[smallest] if m.algorithm == algorithm
            ).map_output_records
            large = next(
                m for m in sweep[largest] if m.algorithm == algorithm
            ).map_output_records
            # More documents means more records shuffled for every method.
            assert large > small, f"{name}/{algorithm}: no growth with dataset size"

        # The methods' relative order (by records) is stable across scales.
        def ordering(fraction):
            measurements = sorted(sweep[fraction], key=lambda m: m.map_output_records)
            return [m.algorithm for m in measurements]

        assert ordering(smallest)[0] == "SUFFIX-SIGMA"
        assert ordering(largest)[0] == "SUFFIX-SIGMA"
