"""Section VI extensions — maximality/closedness and n-gram time series.

Not a numbered figure in the paper, but Section VI claims that (a) the sets
of maximal and closed n-grams are (much) smaller than the full result while
closedness loses no information, and (b) SUFFIX-σ supports aggregations
beyond occurrence counting (time series) at the cost of shipping the
document metadata once per suffix.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.figures import extensions_overview
from repro.harness.report import format_table


def test_extensions_maximal_closed_timeseries(benchmark, datasets):
    result = run_once(benchmark, extensions_overview, datasets)

    rows = [
        {
            "dataset": name,
            "all n-grams": result.all_ngrams[name],
            "closed": result.closed_ngrams[name],
            "maximal": result.maximal_ngrams[name],
        }
        for name in result.all_ngrams
    ]
    print("\n=== Extensions: result sizes (tau=default, sigma=5) ===")
    print(format_table(rows))
    print("\nsample n-gram time series (occurrences per year):")
    for name, samples in result.sample_time_series.items():
        print(f"--- {name} ---")
        for ngram, series in samples.items():
            print(f"  {ngram}: {dict(sorted(series.items()))}")

    for name in result.all_ngrams:
        # maximal ⊆ closed ⊆ all, with strict reductions on real data.
        assert result.maximal_ngrams[name] <= result.closed_ngrams[name]
        assert result.closed_ngrams[name] <= result.all_ngrams[name]
        assert result.maximal_ngrams[name] < result.all_ngrams[name]
