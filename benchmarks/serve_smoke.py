"""End-to-end smoke driver for the store serving tier (used by CI).

Starts ``repro serve`` as real subprocesses over an existing store, fires
concurrent :class:`~repro.ngramstore.api.StoreAPI` client workloads at
the deployment, and asserts every response is byte-identical to a direct
:class:`~repro.ngramstore.NGramStore` read of the same store — plus that
the rendered top-k matches the offline ``repro query --ids --top-k``
output line for line.  Client-side latencies (and each server's own
metrics snapshot) are written as a JSON report so CI can upload
percentiles as an artifact.

``--topology`` picks the deployment shape:

* ``single`` (default) — one server, plain :class:`StoreClient`s;
* ``replicas`` — ``--replicas`` identical servers behind a
  :class:`~repro.ngramstore.router.ReplicaPool` per client thread, plus a
  live failover check (one replica is killed mid-run and every read must
  still be answered);
* ``sharded`` — ``--shards`` range-sharded servers (each serving one
  slice of the store's partitions) behind a
  :class:`~repro.ngramstore.router.ShardRouter` per client thread, so
  gets route to the owning shard and top-k is merged across shards.

With ``--baseline DIR --scale N`` it additionally asserts every sampled
value equals ``N x`` the baseline store's — the check CI runs after
merging ``N`` identical per-shard stores.

Exit status is non-zero on any mismatch, so the CI step fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py --store work/store \
        --clients 8 --requests 50 --report reports/serve-latency.json \
        --topology sharded --shards 3
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro.ngramstore import NGramStore, ReplicaPool, ShardRouter, StoreClient
from repro.ngramstore.server import percentile


def start_server(
    store_dir: str,
    cache_blocks: int,
    max_clients: int,
    timeout: float = 60.0,
    extra_args=(),
):
    """Launch ``repro serve`` and wait for its ready-file; returns (proc, host, port)."""
    ready_dir = tempfile.mkdtemp(prefix="serve-smoke-")
    ready_path = os.path.join(ready_dir, "ready.txt")
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            store_dir,
            "--port",
            "0",
            "--cache-blocks",
            str(cache_blocks),
            "--max-clients",
            str(max_clients),
            "--ready-file",
            ready_path,
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.time() + timeout
    while not os.path.exists(ready_path):
        if process.poll() is not None:
            raise SystemExit(
                f"server exited early ({process.returncode}): {process.stderr.read()}"
            )
        if time.time() > deadline:
            process.kill()
            raise SystemExit("server did not become ready in time")
        time.sleep(0.05)
    with open(ready_path, encoding="utf-8") as handle:
        host, port = handle.read().split()
    return process, host, int(port)


def render_top_k(records):
    """Render records exactly like ``repro query --ids --top-k`` prints them."""
    lines = []
    for ngram, value in records:
        rendered = f"{value:10d}" if isinstance(value, int) else str(value)
        lines.append(f"{rendered}  {' '.join(str(term) for term in ngram)}")
    return lines


def client_workload(client_factory, seed, keys, expected, reference_top, requests):
    """One client's worth of queries; returns per-op latency samples.

    ``client_factory`` builds a fresh StoreAPI client per thread (socket
    clients hold one connection each, so threads must not share them).
    """
    rng = random.Random(seed)
    latencies = {"get": [], "multi_get": [], "prefix": [], "top_k": []}
    with client_factory() as client:
        for _ in range(requests):
            key = rng.choice(keys)
            started = time.perf_counter()
            value = client.get(key)
            latencies["get"].append(time.perf_counter() - started)
            assert value == expected[key], f"get({key!r}) = {value!r} != {expected[key]!r}"
        assert client.get((10**9,)) is None

        # The batched ops: one round-trip each, answers identical to the
        # equivalent single-key calls.
        batch = [rng.choice(keys) for _ in range(32)] + [(10**9,)]
        started = time.perf_counter()
        values = client.multi_get(batch)
        latencies["multi_get"].append(time.perf_counter() - started)
        assert values == [expected.get(key) for key in batch], "multi_get diverged"

        term = rng.choice(keys)[0]
        started = time.perf_counter()
        prefix_result = client.prefix((term,))
        latencies["prefix"].append(time.perf_counter() - started)
        reference_prefix = [
            record for record in sorted(expected.items()) if record[0][0] == term
        ]
        assert prefix_result == reference_prefix, f"prefix(({term},)) diverged"
        assert client.multi_prefix([(term,), (10**9,)]) == [
            reference_prefix,
            [],
        ], "multi_prefix diverged"

        started = time.perf_counter()
        top = client.top_k(10)
        latencies["top_k"].append(time.perf_counter() - started)
        assert top == reference_top, "top_k diverged from direct store read"
    return latencies


def build_topology(args):
    """Start the deployment; returns (processes, endpoints, client_factory).

    ``client_factory`` builds a per-thread StoreAPI client over the
    running servers: a plain StoreClient, a ReplicaPool of StoreClients,
    or a ShardRouter of per-shard StoreClients.
    """
    protocol = args.protocol

    if args.topology == "single":
        process, host, port = start_server(args.store, args.cache_blocks, args.max_clients)
        return (
            [process],
            [(host, port)],
            lambda: StoreClient(host, port, protocol=protocol),
        )

    if args.topology == "replicas":
        servers = [
            start_server(args.store, args.cache_blocks, args.max_clients)
            for _ in range(args.replicas)
        ]
        endpoints = [(host, port) for _, host, port in servers]
        return (
            [process for process, _, _ in servers],
            endpoints,
            lambda: ReplicaPool(
                [StoreClient(host, port, protocol=protocol) for host, port in endpoints]
            ),
        )

    servers = [
        start_server(
            args.store,
            args.cache_blocks,
            args.max_clients,
            extra_args=["--num-shards", str(args.shards), "--shard-index", str(index)],
        )
        for index in range(args.shards)
    ]
    endpoints = [(host, port) for _, host, port in servers]
    return (
        [process for process, _, _ in servers],
        endpoints,
        lambda: ShardRouter(
            [StoreClient(host, port, protocol=protocol) for host, port in endpoints]
        ),
    )


def cross_protocol_identity_check(endpoint, keys, expected, reference_top, complete):
    """Binary and JSON clients of one server answer byte-identically.

    ``complete`` says the endpoint serves the whole store (not one shard),
    so answers are additionally checked against the direct reads.
    """
    host, port = endpoint
    sample = keys[:: max(1, len(keys) // 40)]
    prefixes = sorted({key[:1] for key in sample})[:5]
    answers = {}
    for protocol in ("binary", "json"):
        with StoreClient(host, port, protocol=protocol) as client:
            assert client.negotiated_protocol == protocol
            answers[protocol] = (
                [client.get(key) for key in sample],
                client.multi_get(sample + [(10**9,)]),
                client.multi_prefix(prefixes),
                client.top_k(10),
                client.stats(),
            )
    assert answers["binary"] == answers["json"], (
        "binary and JSON protocol answers diverged"
    )
    if complete:
        gets, multi, _, top, _ = answers["binary"]
        assert gets == [expected[key] for key in sample]
        assert multi == [expected[key] for key in sample] + [None]
        assert top == reference_top
    print(
        f"cross-protocol identity OK: {len(sample)} gets + batched ops "
        "byte-identical over binary and JSON"
    )


def replica_failover_check(processes, client_factory, keys, expected):
    """Kill one replica under a live pool; every read must still answer."""
    with client_factory() as pool:
        sample = keys[:: max(1, len(keys) // 50)]
        assert pool.get(sample[0]) == expected[sample[0]]
        victim = processes[0]
        victim.send_signal(signal.SIGTERM)
        victim.communicate(timeout=60)
        for key in sample:
            value = pool.get(key)
            assert value == expected[key], (
                f"get({key!r}) after replica loss: {value!r} != {expected[key]!r}"
            )
    print(f"replica failover OK: {len(sample)} reads answered after killing one replica")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--store", required=True, help="store directory to serve")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=50, help="point gets per client")
    parser.add_argument("--cache-blocks", type=int, default=128)
    parser.add_argument("--max-clients", type=int, default=4)
    parser.add_argument("--report", default=None, help="latency-percentile JSON path")
    parser.add_argument(
        "--topology",
        choices=("single", "replicas", "sharded"),
        default="single",
        help="deployment shape to smoke (default: one server)",
    )
    parser.add_argument(
        "--protocol",
        choices=("auto", "binary", "json"),
        default="auto",
        help="wire protocol the workload clients use (default: negotiate)",
    )
    parser.add_argument("--replicas", type=int, default=2, help="servers for --topology replicas")
    parser.add_argument("--shards", type=int, default=3, help="servers for --topology sharded")
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline store directory for the merged-store scale check",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=2,
        help="expected value multiple of --baseline (e.g. 2 after a self-merge)",
    )
    args = parser.parse_args(argv)

    with NGramStore.open(args.store) as direct:
        expected = dict(direct.items())
        reference_top = direct.top_k(10)
    keys = sorted(expected)
    if not keys:
        raise SystemExit(f"store {args.store} is empty; nothing to smoke")

    if args.baseline is not None:
        with NGramStore.open(args.baseline) as baseline:
            sample = sorted(baseline.items())[:: max(1, len(baseline) // 200)]
        for key, value in sample:
            assert expected.get(key) == args.scale * value, (
                f"merged store value for {key!r}: {expected.get(key)!r} "
                f"!= {args.scale} x {value!r}"
            )
        print(f"merged-store scale check OK ({len(sample)} keys, x{args.scale})")

    processes, endpoints, client_factory = build_topology(args)
    exit_results = []
    try:
        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            results = list(
                pool.map(
                    lambda seed: client_workload(
                        client_factory, seed, keys, expected, reference_top, args.requests
                    ),
                    range(args.clients),
                )
            )

        # Byte-identity against the offline CLI rendering of the same query.
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        offline = subprocess.run(
            [sys.executable, "-m", "repro", "query", args.store, "--top-k", "10", "--ids"],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        with client_factory() as client:
            served_lines = render_top_k(client.top_k(10))
        # rstrip, not strip: the first line's value padding is leading
        # whitespace and part of the byte-identity contract.
        offline_lines = offline.stdout.rstrip("\n").splitlines()
        assert served_lines == offline_lines, (
            "served top-k rendering diverged from offline `repro query`:\n"
            f"served : {served_lines}\noffline: {offline_lines}"
        )
        print("served responses byte-identical to offline query output")

        # Every deployment shape is fronted by socket servers, so the
        # binary/JSON identity check runs against the first endpoint.
        cross_protocol_identity_check(
            endpoints[0],
            keys,
            expected,
            reference_top,
            complete=args.topology != "sharded",
        )

        # Per-server metrics, probed while every server is still up (the
        # replica failover check below deliberately kills one).
        server_reports = []
        for host, port in endpoints:
            with StoreClient(host, port) as probe:
                server_reports.append(
                    {"host": host, "port": port, "stats": probe.server_stats()}
                )

        if args.topology == "replicas":
            replica_failover_check(processes, client_factory, keys, expected)
    finally:
        for process in processes:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        for process in processes:
            try:
                _, stderr = process.communicate(timeout=60)
            except ValueError:  # streams already drained (the failover victim)
                process.wait(timeout=60)
                stderr = ""
            exit_results.append((process.returncode, stderr))
    for returncode, stderr in exit_results:
        if returncode != 0:
            raise SystemExit(f"server exited {returncode}: {stderr}")

    server_stats = server_reports[0]["stats"]
    report = {
        "store": args.store,
        "topology": args.topology,
        "protocol": args.protocol,
        "clients": args.clients,
        "requests_per_client": args.requests,
        "operations": {},
        "server": server_stats,
        "servers": server_reports,
    }
    for operation in ("get", "multi_get", "prefix", "top_k"):
        samples = sorted(
            sample for result in results for sample in result[operation]
        )
        report["operations"][operation] = {
            "count": len(samples),
            "p50_us": round(percentile(samples, 0.50) * 1e6, 1),
            "p90_us": round(percentile(samples, 0.90) * 1e6, 1),
            "p99_us": round(percentile(samples, 0.99) * 1e6, 1),
            "max_us": round(samples[-1] * 1e6, 1),
        }
    print(json.dumps(report["operations"], indent=2, sort_keys=True))
    if args.report:
        parent = os.path.dirname(args.report)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote serve-smoke latency report to {args.report}")
    print(
        f"serve smoke OK ({args.topology}, {len(endpoints)} server(s)): "
        f"{args.clients} clients x {args.requests} gets, "
        f"cache hit rate {server_stats['cache']['hit_rate']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
