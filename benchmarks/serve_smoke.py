"""End-to-end smoke driver for the store query server (used by CI).

Starts ``repro serve`` as a real subprocess over an existing store, fires
concurrent :class:`~repro.ngramstore.server.StoreClient` workloads at it,
and asserts every response is byte-identical to a direct
:class:`~repro.ngramstore.NGramStore` read of the same store — plus that
the rendered top-k matches the offline ``repro query --ids --top-k``
output line for line.  Client-side latencies (and the server's own
metrics snapshot) are written as a JSON report so CI can upload
percentiles as an artifact.

With ``--baseline DIR --scale N`` it additionally asserts every sampled
value equals ``N x`` the baseline store's — the check CI runs after
merging ``N`` identical per-shard stores.

Exit status is non-zero on any mismatch, so the CI step fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/serve_smoke.py --store work/store \
        --clients 8 --requests 50 --report reports/serve-latency.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro.ngramstore import NGramStore, StoreClient
from repro.ngramstore.server import percentile


def start_server(store_dir: str, cache_blocks: int, max_clients: int, timeout: float = 60.0):
    """Launch ``repro serve`` and wait for its ready-file; returns (proc, host, port)."""
    ready_dir = tempfile.mkdtemp(prefix="serve-smoke-")
    ready_path = os.path.join(ready_dir, "ready.txt")
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            store_dir,
            "--port",
            "0",
            "--cache-blocks",
            str(cache_blocks),
            "--max-clients",
            str(max_clients),
            "--ready-file",
            ready_path,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.time() + timeout
    while not os.path.exists(ready_path):
        if process.poll() is not None:
            raise SystemExit(
                f"server exited early ({process.returncode}): {process.stderr.read()}"
            )
        if time.time() > deadline:
            process.kill()
            raise SystemExit("server did not become ready in time")
        time.sleep(0.05)
    with open(ready_path, encoding="utf-8") as handle:
        host, port = handle.read().split()
    return process, host, int(port)


def render_top_k(records):
    """Render records exactly like ``repro query --ids --top-k`` prints them."""
    lines = []
    for ngram, value in records:
        rendered = f"{value:10d}" if isinstance(value, int) else str(value)
        lines.append(f"{rendered}  {' '.join(str(term) for term in ngram)}")
    return lines


def client_workload(host, port, seed, keys, expected, reference_top, requests):
    """One connection's worth of queries; returns per-op latency samples."""
    rng = random.Random(seed)
    latencies = {"get": [], "prefix": [], "top_k": []}
    with StoreClient(host, port) as client:
        for _ in range(requests):
            key = rng.choice(keys)
            started = time.perf_counter()
            value = client.get(key)
            latencies["get"].append(time.perf_counter() - started)
            assert value == expected[key], f"get({key!r}) = {value!r} != {expected[key]!r}"
        assert client.get((10**9,)) is None

        term = rng.choice(keys)[0]
        started = time.perf_counter()
        prefix_result = client.prefix((term,))
        latencies["prefix"].append(time.perf_counter() - started)
        reference_prefix = [
            record for record in sorted(expected.items()) if record[0][0] == term
        ]
        assert prefix_result == reference_prefix, f"prefix(({term},)) diverged"

        started = time.perf_counter()
        top = client.top_k(10)
        latencies["top_k"].append(time.perf_counter() - started)
        assert top == reference_top, "top_k diverged from direct store read"
    return latencies


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--store", required=True, help="store directory to serve")
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=50, help="point gets per client")
    parser.add_argument("--cache-blocks", type=int, default=128)
    parser.add_argument("--max-clients", type=int, default=4)
    parser.add_argument("--report", default=None, help="latency-percentile JSON path")
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline store directory for the merged-store scale check",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=2,
        help="expected value multiple of --baseline (e.g. 2 after a self-merge)",
    )
    args = parser.parse_args(argv)

    with NGramStore.open(args.store) as direct:
        expected = dict(direct.items())
        reference_top = direct.top_k(10)
    keys = sorted(expected)
    if not keys:
        raise SystemExit(f"store {args.store} is empty; nothing to smoke")

    if args.baseline is not None:
        with NGramStore.open(args.baseline) as baseline:
            sample = sorted(baseline.items())[:: max(1, len(baseline) // 200)]
        for key, value in sample:
            assert expected.get(key) == args.scale * value, (
                f"merged store value for {key!r}: {expected.get(key)!r} "
                f"!= {args.scale} x {value!r}"
            )
        print(f"merged-store scale check OK ({len(sample)} keys, x{args.scale})")

    process, host, port = start_server(args.store, args.cache_blocks, args.max_clients)
    try:
        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            results = list(
                pool.map(
                    lambda seed: client_workload(
                        host, port, seed, keys, expected, reference_top, args.requests
                    ),
                    range(args.clients),
                )
            )

        # Byte-identity against the offline CLI rendering of the same query.
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        offline = subprocess.run(
            [sys.executable, "-m", "repro", "query", args.store, "--top-k", "10", "--ids"],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        with StoreClient(host, port) as client:
            served_lines = render_top_k(client.top_k(10))
            server_stats = client.server_stats()
        # rstrip, not strip: the first line's value padding is leading
        # whitespace and part of the byte-identity contract.
        offline_lines = offline.stdout.rstrip("\n").splitlines()
        assert served_lines == offline_lines, (
            "served top-k rendering diverged from offline `repro query`:\n"
            f"served : {served_lines}\noffline: {offline_lines}"
        )
        print("served responses byte-identical to offline query output")
    finally:
        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60)
    if process.returncode != 0:
        raise SystemExit(f"server exited {process.returncode}: {stderr}")

    report = {
        "store": args.store,
        "clients": args.clients,
        "requests_per_client": args.requests,
        "operations": {},
        "server": server_stats,
    }
    for operation in ("get", "prefix", "top_k"):
        samples = sorted(
            sample for result in results for sample in result[operation]
        )
        report["operations"][operation] = {
            "count": len(samples),
            "p50_us": round(percentile(samples, 0.50) * 1e6, 1),
            "p90_us": round(percentile(samples, 0.90) * 1e6, 1),
            "p99_us": round(percentile(samples, 0.99) * 1e6, 1),
            "max_us": round(samples[-1] * 1e6, 1),
        }
    print(json.dumps(report["operations"], indent=2, sort_keys=True))
    if args.report:
        parent = os.path.dirname(args.report)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote serve-smoke latency report to {args.report}")
    print(
        f"serve smoke OK: {args.clients} clients x {args.requests} gets, "
        f"cache hit rate {server_stats['cache']['hit_rate']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
