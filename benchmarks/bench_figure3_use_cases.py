"""Figure 3 — the two use cases (language model training, text analytics).

Language model: σ=5 with a low minimum collection frequency.
Text analytics: σ=100 with a higher minimum collection frequency.

Shapes to reproduce from the paper:
* SUFFIX-σ beats the best competitor clearly in the language-model use case
  (paper: ≈3× on both datasets) and by a wide margin in the analytics use
  case (paper: up to 12× on NYT);
* NAIVE is not measured for the analytics use case on the web corpus (it did
  not finish in reasonable time in the paper; it is skipped here too).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.figures import figure3_use_cases
from repro.harness.report import format_measurements


def _best_competitor(measurements, metric="simulated_wallclock_seconds"):
    others = [m for m in measurements if m.algorithm != "SUFFIX-SIGMA"]
    suffix = [m for m in measurements if m.algorithm == "SUFFIX-SIGMA"]
    assert suffix and others
    return min(getattr(m, metric) for m in others), getattr(suffix[0], metric)


def test_figure3_use_cases(benchmark, datasets, runner):
    result = run_once(benchmark, figure3_use_cases, datasets, runner)

    print("\n=== Figure 3(a): language model use case (sigma=5) ===")
    for name, measurements in result.language_model.items():
        print(f"\n--- {name} ---")
        print(format_measurements(measurements))
    print("\n=== Figure 3(b): text analytics use case (sigma=100) ===")
    for name, measurements in result.analytics.items():
        print(f"\n--- {name} ---")
        print(format_measurements(measurements))

    # SUFFIX-SIGMA is at least on par with the best competitor for the
    # language-model use case and clearly better for analytics.
    for name, measurements in result.language_model.items():
        best_other, suffix = _best_competitor(measurements)
        assert suffix <= best_other * 1.1, f"{name}: SUFFIX-SIGMA slower than best competitor"
    for name, measurements in result.analytics.items():
        best_other, suffix = _best_competitor(measurements)
        assert suffix < best_other, f"{name}: SUFFIX-SIGMA should win the analytics use case"

    # NAIVE is skipped on the web-like dataset for sigma=100 (as in the paper).
    web_algorithms = {m.algorithm for m in result.analytics["CW-like"]}
    assert "NAIVE" not in web_algorithms
