"""Dataset materialisation modes on a Figure-6 scaling point (memory vs disk).

Runs the chained APRIORI-SCAN pipeline (plus SUFFIX-σ as the single-job
contrast) on one dataset sample under three configurations:

* ``memory-full`` — in-memory datasets, every job output retained, no
  spilling: the fully-materialised baseline;
* ``disk`` — sharded on-disk job I/O with the default final-output-only
  retention policy;
* ``disk-streaming`` — disk materialisation plus a shuffle spill budget:
  the configuration where every stage of the engine is out-of-core.  The
  budget also bounds the map side: with a combiner configured (NAIVE) the
  emissions flow through the combine buffer and are combined per spill,
  so the map-side peak is capped by the budget instead of the per-task
  emission volume.

All three must measure the exact same computation (records, bytes,
n-grams); the point of the comparison is the tracked peak of Python-level
allocations, which must drop once job I/O streams through the dataset
layer — and, for the combiner-heavy NAIVE method, once map emissions are
combined per spill.  The comparison is exported as a JSON report
(``MATERIALIZATION_REPORT`` environment variable, default
``materialization_report.json``) — the CI benchmark smoke job uploads that
file as an artifact.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import run_once
from repro.config import ExecutionConfig
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import format_measurements

#: Spill budget of the streaming configuration: measured in the compact
#: serialised encoding (a few bytes per record), so this bounds the shuffle
#: to roughly a hundred kilobytes of Python objects.
SPILL_BUDGET_BYTES = 8 * 1024

MODES = {
    "memory-full": ExecutionConfig(retention="all"),
    "disk": ExecutionConfig(materialize="disk"),
    "disk-streaming": ExecutionConfig(
        materialize="disk", spill_threshold_bytes=SPILL_BUDGET_BYTES
    ),
}

#: NAIVE is the combiner-dominated method: its map emission volume (n·σ
#: records per task) is what the combine buffer exists to cap.
METHODS = ("NAIVE", "APRIORI-SCAN", "SUFFIX-SIGMA")


def _compare_modes(spec, fraction=0.5, sigma=5):
    collection = spec.build(fraction=fraction)
    comparison = {}
    for name, execution in MODES.items():
        runner = ExperimentRunner(execution=execution, track_memory=True)
        measurements = []
        for method in METHODS:
            measurement, _ = runner.run_once(
                method, collection, spec.name, spec.default_tau, sigma
            )
            measurements.append(measurement)
        comparison[name] = measurements
    return comparison


def test_materialization_modes_on_figure6_point(benchmark, nyt_spec):
    comparison = run_once(benchmark, _compare_modes, nyt_spec)

    rows = []
    for name, measurements in comparison.items():
        print(f"\n=== Figure 6 point ({nyt_spec.name}, 50% sample), {name!r} mode ===")
        print(format_measurements(measurements))
        for measurement in measurements:
            row = measurement.as_row()
            row["mode"] = name
            rows.append(row)

    report_path = os.environ.get("MATERIALIZATION_REPORT", "materialization_report.json")
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle, indent=2, sort_keys=True)
    print(f"\nwrote materialization comparison to {report_path}")

    baseline = {m.algorithm: m for m in comparison["memory-full"]}
    for mode in ("disk", "disk-streaming"):
        for measurement in comparison[mode]:
            reference = baseline[measurement.algorithm]
            # Identical computation under every materialisation mode.
            assert measurement.map_output_records == reference.map_output_records
            assert measurement.map_output_bytes == reference.map_output_bytes
            assert measurement.num_ngrams == reference.num_ngrams
            assert measurement.num_jobs == reference.num_jobs

    # The acceptance bar: the chained APRIORI-SCAN pipeline peaks below the
    # fully-materialised baseline once job I/O streams through the dataset
    # layer and the shuffle spills, and NAIVE — whose peak is its per-task
    # map emissions — drops once the combine buffer combines per spill.
    streaming = {m.algorithm: m for m in comparison["disk-streaming"]}
    assert (
        streaming["APRIORI-SCAN"].peak_memory_bytes
        < baseline["APRIORI-SCAN"].peak_memory_bytes
    )
    assert streaming["NAIVE"].peak_memory_bytes < baseline["NAIVE"].peak_memory_bytes
