"""Ablations of the Section V implementation techniques.

The paper attributes significant practical impact to (a) local aggregation
with a combiner, (b) splitting documents at infrequent terms and (c) compact
sequence encoding.  This benchmark quantifies (a) and (b) on the NYT-like
dataset by re-running NAIVE, APRIORI-SCAN and SUFFIX-σ with the techniques
toggled, reporting the usual three measures.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.figures import ablation_implementation_choices
from repro.harness.report import format_measurements


def test_ablation_implementation_choices(benchmark, nyt_spec):
    measurements = run_once(benchmark, ablation_implementation_choices, nyt_spec)

    print("\n=== Ablations: combiner and document splitting (NYT-like, sigma=5) ===")
    print(format_measurements(measurements))

    by_label = {m.algorithm: m for m in measurements}

    # The combiner reduces the records that reach the shuffle for NAIVE
    # (measured via the simulated wallclock which charges shuffled records),
    # while MAP_OUTPUT_RECORDS itself is unchanged.
    assert (
        by_label["NAIVE+combiner"].map_output_records
        == by_label["NAIVE-no-combiner"].map_output_records
    )

    # Document splitting never increases the records any method emits.
    assert (
        by_label["NAIVE+split"].map_output_records
        <= by_label["NAIVE+combiner"].map_output_records
    )
    assert (
        by_label["SUFFIX-SIGMA+split"].map_output_records
        <= by_label["SUFFIX-SIGMA"].map_output_records
    )
    assert (
        by_label["APRIORI-SCAN+split"].map_output_records
        <= by_label["APRIORI-SCAN"].map_output_records
    )
