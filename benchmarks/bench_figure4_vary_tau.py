"""Figure 4 — varying the minimum collection frequency τ (σ = 5).

For both datasets and every method, sweeps τ and reports the three measures
of the paper: (simulated) wallclock, bytes transferred between map and
reduce, and the number of records transferred and sorted.

Shapes to reproduce from the paper:
* for high τ, SUFFIX-σ performs on par with the best competitor
  (APRIORI-SCAN); for low τ it clearly outperforms every other method;
* the APRIORI methods' cost grows steeply as τ decreases (their k-th
  iteration depends on the number of frequent (k-1)-grams);
* NAIVE's cost is independent of τ;
* SUFFIX-σ transfers the fewest records at every τ, and its record count
  does not depend on τ.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.figures import figure4_vary_tau
from repro.harness.report import format_sweep


def _series(sweep, algorithm, attribute):
    values = []
    for measurements in sweep.values():
        for measurement in measurements:
            if measurement.algorithm == algorithm:
                values.append(getattr(measurement, attribute))
    return values


def test_figure4_vary_tau(benchmark, datasets, runner):
    sweeps = run_once(benchmark, figure4_vary_tau, datasets, runner)

    for name, sweep in sweeps.items():
        print(f"\n=== Figure 4 ({name}): varying tau, sigma=5 ===")
        print("\nsimulated wallclock (s):")
        print(format_sweep(sweep, metric="simulated_s", parameter_label="method"))
        print("\nbytes transferred:")
        print(format_sweep(sweep, metric="bytes", parameter_label="method"))
        print("\n# records:")
        print(format_sweep(sweep, metric="records", parameter_label="method"))

    for name, sweep in sweeps.items():
        taus = sorted(sweep.keys())
        lowest_tau, highest_tau = taus[0], taus[-1]

        # SUFFIX-SIGMA wins clearly at the lowest tau ...
        low = {m.algorithm: m for m in sweep[lowest_tau]}
        best_other = min(
            m.simulated_wallclock_seconds
            for algorithm, m in low.items()
            if algorithm != "SUFFIX-SIGMA"
        )
        assert low["SUFFIX-SIGMA"].simulated_wallclock_seconds < best_other

        # ... and is at least on par at the highest tau.
        high = {m.algorithm: m for m in sweep[highest_tau]}
        best_other_high = min(
            m.simulated_wallclock_seconds
            for algorithm, m in high.items()
            if algorithm != "SUFFIX-SIGMA"
        )
        assert high["SUFFIX-SIGMA"].simulated_wallclock_seconds <= best_other_high * 1.1

        # NAIVE's records are independent of tau; SUFFIX-SIGMA's too.
        assert len(set(_series(sweep, "NAIVE", "map_output_records"))) == 1
        assert len(set(_series(sweep, "SUFFIX-SIGMA", "map_output_records"))) == 1

        # SUFFIX-SIGMA transfers the fewest records at every tau.
        for measurements in sweep.values():
            by_algorithm = {m.algorithm: m.map_output_records for m in measurements}
            assert by_algorithm["SUFFIX-SIGMA"] == min(by_algorithm.values())

        # APRIORI-SCAN gets cheaper as tau grows (more pruning).
        scan_records = _series(sweep, "APRIORI-SCAN", "map_output_records")
        assert scan_records[0] >= scan_records[-1]
