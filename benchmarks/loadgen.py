"""Workload replay harness entry point (used by CI).

A thin wrapper over ``repro loadgen`` so the harness sits next to the
other benchmark drivers: it replays seeded workload mixes (hot-key zipf,
prefix-heavy scans, batched multi_get, a mixed blend) against a store
directory or a running deployment, writes the schema-stable
``BENCH_loadgen.json`` report with histogram-derived per-mix
p50/p95/p99, and exits non-zero when an SLO target is violated — the CI
gate for serving-tier latency regressions.

Usage::

    PYTHONPATH=src python benchmarks/loadgen.py work/store \
        --requests 200 --concurrency 4 \
        --report reports/BENCH_loadgen.json --slo-p99-ms 250

    PYTHONPATH=src python benchmarks/loadgen.py \
        --connect 127.0.0.1:9201 --connect 127.0.0.1:9202 \
        --topology sharded --slo-min-throughput 50

All options are ``repro loadgen``'s — see ``repro loadgen --help``.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["loadgen", *sys.argv[1:]]))
