"""End-to-end smoke driver for cross-store analytics + completion (CI).

Builds two overlapping seeded stores that share one vocabulary (both at
τ=2, so the residual sidecars are exercised), then drives the shipped
surfaces as real subprocesses and asserts byte-identity everywhere:

1. ``repro diff-stores`` / ``repro intersect-stores`` write store
   directories whose exact tables must equal the brute-force set
   computation over the inputs' ``exact_items()`` — and the in-process
   streaming twins must produce the same records.
2. ``repro rethreshold`` re-splits store A at a higher τ; the output's
   exact table must replay A's exactly.
3. ``repro serve --http --extra-store`` serves store A with B mounted;
   ``GET /complete`` and ``GET /compare`` responses must equal the
   offline :class:`~repro.ngramstore.QueryEngine` answers over the same
   two stores.

The served JSON bodies are also written to ``--expected`` so the CI job
can re-curl a fresh server and compare without recomputing anything.
Exit status is non-zero on any mismatch, so the CI step fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/analytics_smoke.py \
        --workdir work/analytics --report reports/BENCH_analytics.json \
        --expected work/analytics/expected_serving.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import time
import urllib.request

from repro.config import StoreConfig
from repro.corpus.vocabulary import Vocabulary
from repro.ngramstore import (
    NGramStore,
    QueryEngine,
    build_store,
    diff_records,
    intersect_records,
)

SCHEMA = "ngramstore-analytics/v1"
MAX_TERM = 40
TAU = 2


def term_for(term_id):
    return f"t{term_id:02d}"


def make_vocabulary():
    return Vocabulary.from_term_frequencies(
        {term_for(index): 1000 - index for index in range(MAX_TERM + 1)}
    )


def make_counts(count, seed, max_len=3, max_count=20):
    rng = random.Random(seed)
    keys = set()
    while len(keys) < count:
        keys.add(
            tuple(rng.randint(0, MAX_TERM) for _ in range(rng.randint(1, max_len)))
        )
    return {key: rng.randint(1, max_count) for key in keys}


def overlapping_counts(seed, size_a=400, size_b=300, shared=150):
    counts_a = make_counts(size_a, seed=seed)
    rng = random.Random(seed + 1)
    counts_b = make_counts(size_b - shared, seed=seed + 2)
    for key in sorted(counts_a)[:shared]:
        counts_b[key] = rng.randint(1, 20)
    return counts_a, counts_b


def brute_diff(counts_a, counts_b):
    return sorted(
        (key, value) for key, value in counts_a.items() if key not in counts_b
    )


def brute_intersect(counts_a, counts_b):
    return sorted(
        (key, [counts_a[key], counts_b[key]])
        for key in counts_a.keys() & counts_b.keys()
    )


def run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=env,
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        raise SystemExit(
            f"repro {' '.join(argv)} failed ({completed.returncode}):\n"
            f"{completed.stdout}{completed.stderr}"
        )
    return completed.stdout


def start_http_server(store_dir, extra_store_dir, workdir, timeout=60.0):
    ready_path = os.path.join(workdir, "ready.txt")
    if os.path.exists(ready_path):
        os.remove(ready_path)
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            store_dir,
            "--http",
            "--port",
            "0",
            "--extra-store",
            extra_store_dir,
            "--ready-file",
            ready_path,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.time() + timeout
    while not os.path.exists(ready_path):
        if process.poll() is not None:
            raise SystemExit(
                f"server exited early ({process.returncode}): {process.stderr.read()}"
            )
        if time.time() > deadline:
            process.kill()
            raise SystemExit("server did not become ready in time")
        time.sleep(0.05)
    with open(ready_path, encoding="utf-8") as handle:
        host, port = handle.read().split()
    return process, host, int(port)


def http_get_json(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.loads(response.read())


def check(label, actual, expected):
    if actual != expected:
        raise SystemExit(
            f"MISMATCH in {label}:\n  actual:   {actual!r}\n  expected: {expected!r}"
        )
    print(f"ok: {label}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", required=True, help="scratch directory")
    parser.add_argument("--report", required=True, help="BENCH JSON output path")
    parser.add_argument(
        "--expected",
        required=True,
        help="write the served /complete and /compare JSON bodies here "
        "(for the CI curl comparison)",
    )
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args()

    os.makedirs(args.workdir, exist_ok=True)
    report = {"schema": SCHEMA, "seed": args.seed, "tau": TAU, "checks": 0}

    counts_a, counts_b = overlapping_counts(args.seed)
    vocabulary = make_vocabulary()
    a_dir = os.path.join(args.workdir, "store-a")
    b_dir = os.path.join(args.workdir, "store-b")
    started = time.perf_counter()
    for counts, directory in ((counts_a, a_dir), (counts_b, b_dir)):
        build_store(
            sorted(counts.items()),
            directory,
            store=StoreConfig(
                num_partitions=3, records_per_block=64, codec="gzip", min_frequency=TAU
            ),
            vocabulary=vocabulary,
        )
    report["build_seconds"] = time.perf_counter() - started
    report["store_a_records"] = len(counts_a)
    report["store_b_records"] = len(counts_b)

    # ------------------------------------------------- 1. diff / intersect
    expected_diff = brute_diff(counts_a, counts_b)
    expected_intersect = brute_intersect(counts_a, counts_b)
    diff_dir = os.path.join(args.workdir, "diff")
    intersect_dir = os.path.join(args.workdir, "intersect")
    started = time.perf_counter()
    run_cli("diff-stores", a_dir, b_dir, "--output", diff_dir, "--codec", "gzip")
    run_cli("intersect-stores", a_dir, b_dir, "--output", intersect_dir)
    report["analytics_cli_seconds"] = time.perf_counter() - started
    with NGramStore.open(diff_dir) as store:
        check("diff-stores == brute force", list(store.exact_items()), expected_diff)
    with NGramStore.open(intersect_dir) as store:
        check(
            "intersect-stores == brute force",
            list(store.exact_items()),
            expected_intersect,
        )
    check("diff_records == brute force", list(diff_records(a_dir, b_dir)), expected_diff)
    check(
        "intersect_records == brute force",
        list(intersect_records(a_dir, b_dir)),
        expected_intersect,
    )
    report["diff_records"] = len(expected_diff)
    report["intersect_records"] = len(expected_intersect)
    report["checks"] += 4

    # ----------------------------------------------------- 2. rethreshold
    rethreshold_dir = os.path.join(args.workdir, "rethresholded")
    run_cli("rethreshold", a_dir, "--output", rethreshold_dir, "--tau", str(TAU + 2))
    with NGramStore.open(rethreshold_dir) as store:
        check(
            "rethreshold preserves the exact table",
            list(store.exact_items()),
            sorted(counts_a.items()),
        )
        check(
            "rethreshold re-splits the main table",
            list(store.items()),
            sorted(
                (key, value) for key, value in counts_a.items() if value >= TAU + 2
            ),
        )
    report["checks"] += 2

    # ------------------------------------------- 3. served complete/compare
    with NGramStore.open(a_dir) as store_a, NGramStore.open(b_dir) as store_b:
        engine = QueryEngine(store_a, extra_store=store_b)
        # A deterministic two-token prefix with completions, and one
        # intersect + one diff key for compare.
        prefix_key = next(
            key for key, _ in sorted(store_a.items()) if len(key) == 1
        )
        compare_shared = expected_intersect[0][0]
        compare_only_a = expected_diff[0][0]
        prefix_terms = [term_for(term_id) for term_id in prefix_key]
        shared_terms = [term_for(term_id) for term_id in compare_shared]
        probes = [
            (
                "complete",
                f"/complete?key={','.join(map(str, prefix_key))}&k=5",
                {"op": "complete", "key": list(prefix_key), "k": 5},
            ),
            (
                "complete-terms",
                "/complete?terms=" + ",".join(prefix_terms) + "&k=5",
                {"op": "complete", "terms": prefix_terms, "k": 5},
            ),
            (
                "compare-shared",
                f"/compare?key={','.join(map(str, compare_shared))}",
                {"op": "compare", "key": list(compare_shared)},
            ),
            (
                "compare-diff",
                f"/compare?key={','.join(map(str, compare_only_a))}",
                {"op": "compare", "key": list(compare_only_a)},
            ),
            (
                "compare-terms",
                "/compare?terms=" + ",".join(shared_terms),
                {"op": "compare", "terms": shared_terms},
            ),
        ]
        offline = {label: engine.handle(request) for label, _, request in probes}

    process, host, port = start_http_server(a_dir, b_dir, args.workdir)
    try:
        expected_serving = {}
        for label, path, _ in probes:
            served = http_get_json(f"http://{host}:{port}{path}")
            if not served.pop("ok", False):
                raise SystemExit(f"server refused {path}: {served}")
            check(f"served {label} == offline engine", served, offline[label])
            expected_serving[label] = {"path": path, "response": offline[label]}
            report["checks"] += 1
    finally:
        process.terminate()
        process.wait(timeout=30)

    expected_parent = os.path.dirname(args.expected)
    if expected_parent:
        os.makedirs(expected_parent, exist_ok=True)
    with open(args.expected, "w", encoding="utf-8") as handle:
        json.dump({"schema": SCHEMA, "probes": expected_serving}, handle, indent=2)

    report_parent = os.path.dirname(args.report)
    if report_parent:
        os.makedirs(report_parent, exist_ok=True)
    with open(args.report, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"analytics smoke passed: {report['checks']} checks")
    print(f"wrote {args.report} and {args.expected}")


if __name__ == "__main__":
    main()
