"""Figure 2 — output characteristics (τ=5, σ=∞).

Computes, for both datasets, all n-grams occurring at least five times with
no length restriction (using SUFFIX-σ, which the paper highlights can do
this in a single job) and bins them into the 2-dimensional exponential
histogram of Figure 2: bucket (i, j) counts n-grams with
10^i ≤ length < 10^(i+1) and 10^j ≤ cf < 10^(j+1).

The paper's observation to reproduce: the distribution is heavily biased
toward short, less frequent n-grams, but *very long* n-grams (tens of terms)
with non-trivial frequency exist in both corpora.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.figures import figure2_output_characteristics
from repro.harness.report import format_histogram


def test_figure2_output_characteristics(benchmark, datasets):
    histograms = run_once(benchmark, figure2_output_characteristics, datasets)

    print("\n=== Figure 2: # n-grams per (length, cf) bucket (tau=5, sigma=inf) ===")
    for name, histogram in histograms.items():
        print(f"\n--- {name} ---")
        print(format_histogram(histogram))

    for name, histogram in histograms.items():
        assert histogram, f"{name} produced an empty histogram"
        # Bias towards short n-grams: bucket (0, *) dominates.
        short = sum(count for (length_b, _), count in histogram.items() if length_b == 0)
        longer = sum(count for (length_b, _), count in histogram.items() if length_b >= 1)
        assert short > longer
        # Long n-grams (>= 10 terms) occurring >= 5 times exist in both corpora.
        assert any(length_b >= 1 for (length_b, _) in histogram)
