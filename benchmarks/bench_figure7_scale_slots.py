"""Figure 7 — scaling computational resources (16, 32, 48, 64 slots).

Every method runs once per dataset on a 50 % sample with a fixed, large task
count; the simulated-cluster cost model then evaluates the same measured
per-task work under 16, 32, 48 and 64 map/reduce slots — exactly what the
paper does by re-running on a capacity-constrained scheduler pool.

Shapes to reproduce from the paper: all methods benefit from additional
slots, the gains are diminishing (halving again saves less than the first
halving), and the relative order of the methods is unchanged by the slot
count.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.figures import figure7_scale_slots
from repro.harness.report import format_sweep


def test_figure7_scale_slots(benchmark, datasets):
    sweeps = run_once(benchmark, figure7_scale_slots, datasets)

    for name, sweep in sweeps.items():
        print(f"\n=== Figure 7 ({name}): scaling map/reduce slots ===")
        print("\nsimulated wallclock (s):")
        print(format_sweep(sweep, metric="simulated_s", parameter_label="method"))

    for name, sweep in sweeps.items():
        slot_counts = sorted(sweep.keys())
        for algorithm in ("NAIVE", "APRIORI-SCAN", "APRIORI-INDEX", "SUFFIX-SIGMA"):
            series = []
            for slots in slot_counts:
                measurement = next(m for m in sweep[slots] if m.algorithm == algorithm)
                series.append(measurement.simulated_wallclock_seconds)
            # More slots never hurt.
            assert all(later <= earlier * 1.001 for earlier, later in zip(series, series[1:]))
            # Diminishing returns: the first doubling saves at least as much
            # (absolutely) as the last step.
            first_gain = series[0] - series[1]
            last_gain = series[-2] - series[-1]
            assert first_gain >= last_gain - 1e-9

        # The methods' relative order is independent of the slot count.
        def ordering(slots):
            measurements = sorted(
                sweep[slots], key=lambda m: m.simulated_wallclock_seconds
            )
            return [m.algorithm for m in measurements]

        assert ordering(slot_counts[0])[0] == ordering(slot_counts[-1])[0] == "SUFFIX-SIGMA"
