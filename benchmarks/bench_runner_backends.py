"""Execution backends on a Figure-6 scaling point (local vs. processes).

Runs all methods on one dataset sample with the sequential reference
backend and with the multi-core process backend (plus a spill budget, so
the out-of-core shuffle path is exercised), checks that the measured
record/byte/n-gram numbers agree exactly, and reports the wallclock of
both backends side by side.

The comparison is exported as a JSON report (``BACKEND_SMOKE_REPORT``
environment variable, default ``backend_smoke_report.json``) — the CI
benchmark smoke job uploads that file as an artifact.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import run_once
from repro.config import ExecutionConfig
from repro.harness.experiment import ExperimentRunner
from repro.harness.report import format_measurements

#: Spill budget used for the processes backend: far below the shuffle
#: volume of even the 25 % sample, so several runs spill and merge.
SPILL_BUDGET_BYTES = 64 * 1024

BACKENDS = {
    "local": None,
    "processes": ExecutionConfig(
        runner="processes", spill_threshold_bytes=SPILL_BUDGET_BYTES
    ),
}


def _compare_backends(spec, fraction=0.5, sigma=5):
    collection = spec.build(fraction=fraction)
    comparison = {}
    for name, execution in BACKENDS.items():
        runner = ExperimentRunner(execution=execution)
        comparison[name] = runner.compare_methods(
            collection, spec.name, spec.default_tau, sigma
        )
    return comparison


def test_backends_on_figure6_point(benchmark, nyt_spec):
    comparison = run_once(benchmark, _compare_backends, nyt_spec)

    rows = []
    for name, measurements in comparison.items():
        print(f"\n=== Figure 6 point ({nyt_spec.name}, 50% sample) on {name!r} backend ===")
        print(format_measurements(measurements))
        for measurement in measurements:
            row = measurement.as_row()
            row["backend"] = name
            rows.append(row)

    report_path = os.environ.get("BACKEND_SMOKE_REPORT", "backend_smoke_report.json")
    with open(report_path, "w", encoding="utf-8") as handle:
        json.dump(rows, handle, indent=2, sort_keys=True)
    print(f"\nwrote backend comparison to {report_path}")

    local = {m.algorithm: m for m in comparison["local"]}
    processes = {m.algorithm: m for m in comparison["processes"]}
    assert set(local) == set(processes)
    for algorithm, reference in local.items():
        candidate = processes[algorithm]
        # The backends must measure the exact same computation.
        assert candidate.map_output_records == reference.map_output_records, algorithm
        assert candidate.map_output_bytes == reference.map_output_bytes, algorithm
        assert candidate.num_ngrams == reference.num_ngrams, algorithm
        assert candidate.num_jobs == reference.num_jobs, algorithm
