"""Table I — dataset characteristics.

Prints, for the NYT-like and ClueWeb-like synthetic corpora, the same rows
Table I of the paper reports for NYT and ClueWeb09-B: number of documents,
term occurrences, distinct terms, sentences, and sentence-length mean and
standard deviation.  The absolute sizes are scaled down; the *shape*
(CW has more distinct terms, shorter but higher-variance sentences) matches.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.harness.figures import table1_dataset_characteristics
from repro.harness.report import format_table


def test_table1_dataset_characteristics(benchmark, datasets):
    statistics = run_once(benchmark, table1_dataset_characteristics, datasets)

    rows = []
    for name, stats in statistics.items():
        rows.append({"measure": "", "dataset": name, **dict(stats.as_rows())})
    print("\n=== Table I: dataset characteristics ===")
    print(
        format_table(
            [
                {
                    "dataset": name,
                    **{label: value for label, value in stats.as_rows()},
                }
                for name, stats in statistics.items()
            ]
        )
    )

    # Sanity checks on the shape Table I documents.
    nyt = statistics["NYT-like"]
    clueweb = statistics["CW-like"]
    assert nyt.num_documents > 0 and clueweb.num_documents > 0
    assert clueweb.num_distinct_terms > nyt.num_distinct_terms
    assert nyt.sentence_length_mean > clueweb.sentence_length_mean
    assert clueweb.sentence_length_stddev > nyt.sentence_length_stddev
